//! Flight-recorder telemetry: typed per-flow event traces with bounded
//! memory and zero cost when disabled.
//!
//! The simulator's aggregate statistics ([`crate::stats`]) answer *what*
//! happened; this module answers *why*. Hot paths record typed
//! [`TelemetryEvent`]s — cwnd updates, queue depth and sojourn, drops with
//! a reason, encoder-rate decisions, loss-interval closes — through a
//! [`Recorder`] handle. A disabled recorder is a single null check per
//! site, so paper-scale grids keep their wire-speed event rates; an
//! enabled one keeps a per-flow ring buffer (flight recorder: the most
//! recent `ring_capacity` events survive) plus running [`Counters`].
//!
//! High-rate kinds (per-ACK cwnd, per-packet queue depth) are sampled to
//! at most one event per [`TelemetryConfig::sample_interval`] per
//! (flow, kind); rare, decision-grade kinds (drops, RTOs, fast
//! retransmits, controller backoffs, loss-interval closes) always record.
//!
//! Export is deterministic: rings merge stable-sorted by timestamp, ties
//! broken by flow id, preserving each flow's own order. CSV and JSONL
//! writers pair with hand-rolled parsers ([`parse_csv`], [`parse_jsonl`])
//! so traces round-trip without external dependencies, and
//! [`validate_events`] checks schema invariants for CI gates.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::time::{SimDuration, SimTime};

/// Flow id used for events that belong to a link, not a flow (queue depth,
/// link busy). Exported as `4294967295`.
pub const GLOBAL_FLOW: u32 = u32::MAX;

/// Number of event kinds (size of per-flow throttle state).
pub const KIND_COUNT: usize = 15;

/// What happened. The `a`/`b` payload meaning is per-kind (documented on
/// each variant as `a` / `b`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// Congestion window update. `cwnd bytes` / `ssthresh bytes`
    /// (`u64::MAX` = no ssthresh yet, or CCA without one).
    Cwnd = 0,
    /// Pacing-rate update. `bits/s` / unused.
    Pacing = 1,
    /// Bottleneck backlog after an enqueue. `backlog bytes` / `link id`.
    /// Recorded against [`GLOBAL_FLOW`].
    QueueDepth = 2,
    /// A packet left the queue. `sojourn ns` / `link id`.
    QueueSojourn = 3,
    /// Packet dropped by the queue discipline. `link id` / `packet bytes`.
    QueueDrop = 4,
    /// Packet dropped by link impairment (random loss). `link id` /
    /// `packet bytes`.
    LinkDrop = 5,
    /// Link serializer busy; sender must wait. `link id` / `wait ns`.
    /// Recorded against [`GLOBAL_FLOW`].
    LinkBusy = 6,
    /// Encoder target-rate decision. `bits/s` / unused.
    EncoderRate = 7,
    /// Rate controller backed off. `new rate bits/s` / `reason`
    /// (0 = delay, 1 = loss).
    CtrlBackoff = 8,
    /// A TFRC/WALI loss interval closed. `interval length, packets` /
    /// unused.
    LossInterval = 9,
    /// Retransmission timeout fired. `next RTO ns` / `backoff exponent`.
    Rto = 10,
    /// Fast retransmit entered recovery. `cwnd bytes after reduction` /
    /// unused.
    FastRetransmit = 11,
    /// A frame entered the send pipeline. `frame bytes` / `chunk count`.
    Frame = 12,
    /// A scheduled link-scenario step was applied (live reconfiguration).
    /// `link id` / `action code` (netsim's `ScenarioAction` wire code).
    /// Recorded against [`GLOBAL_FLOW`]; never throttled, so traces prove
    /// each disturbance actually happened.
    LinkScenario = 13,
    /// An AQM marked an ECN-capable packet CE instead of dropping it
    /// (RFC 3168 § 5). `link id` / `packet bytes`. Decision-grade: never
    /// throttled, so the counter equals the monitor's per-flow tally.
    EcnMark = 14,
}

impl EventKind {
    /// All kinds, in wire order.
    pub const ALL: [EventKind; KIND_COUNT] = [
        EventKind::Cwnd,
        EventKind::Pacing,
        EventKind::QueueDepth,
        EventKind::QueueSojourn,
        EventKind::QueueDrop,
        EventKind::LinkDrop,
        EventKind::LinkBusy,
        EventKind::EncoderRate,
        EventKind::CtrlBackoff,
        EventKind::LossInterval,
        EventKind::Rto,
        EventKind::FastRetransmit,
        EventKind::Frame,
        EventKind::LinkScenario,
        EventKind::EcnMark,
    ];

    /// Stable wire name (CSV `kind` column, JSONL `"kind"` value).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Cwnd => "cwnd",
            EventKind::Pacing => "pacing",
            EventKind::QueueDepth => "queue_depth",
            EventKind::QueueSojourn => "queue_sojourn",
            EventKind::QueueDrop => "queue_drop",
            EventKind::LinkDrop => "link_drop",
            EventKind::LinkBusy => "link_busy",
            EventKind::EncoderRate => "enc_rate",
            EventKind::CtrlBackoff => "ctrl_backoff",
            EventKind::LossInterval => "loss_interval",
            EventKind::Rto => "rto",
            EventKind::FastRetransmit => "fast_retx",
            EventKind::Frame => "frame",
            EventKind::LinkScenario => "link_scenario",
            EventKind::EcnMark => "ecn_mark",
        }
    }

    /// Inverse of [`EventKind::name`].
    pub fn from_name(s: &str) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// Whether this kind is rate-limited to one event per
    /// [`TelemetryConfig::sample_interval`] per flow. Rare decision-grade
    /// kinds always record.
    fn throttled(self) -> bool {
        matches!(
            self,
            EventKind::Cwnd
                | EventKind::Pacing
                | EventKind::QueueDepth
                | EventKind::QueueSojourn
                | EventKind::LinkBusy
                | EventKind::Frame
        )
    }
}

/// One trace record: 32 bytes, `Copy`, no heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Simulation time of the event.
    pub at: SimTime,
    /// Owning flow, or [`GLOBAL_FLOW`] for link-scope events.
    pub flow: u32,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (per-kind meaning; see [`EventKind`]).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// Sampled aggregate counters, cheap enough to keep even for events the
/// rings throttle or evict.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Events stored in a ring.
    pub recorded: u64,
    /// Events suppressed by the per-(flow, kind) sample interval.
    pub throttled: u64,
    /// Events pushed out of a full ring (flight-recorder overwrite).
    pub evicted: u64,
    /// Queue-discipline drops observed.
    pub queue_drops: u64,
    /// Link-impairment drops observed.
    pub link_drops: u64,
    /// Retransmission timeouts observed.
    pub rtos: u64,
    /// Fast retransmits observed.
    pub fast_retransmits: u64,
    /// Controller backoff decisions observed.
    pub backoffs: u64,
    /// TFRC loss-interval closes observed.
    pub loss_intervals: u64,
    /// Link-scenario steps applied (live path reconfigurations).
    pub scenario_steps: u64,
    /// CE marks applied by ECN-capable AQMs (mark-instead-of-drop).
    pub ecn_marks: u64,
    /// Events the scheduler clamped from the past to `now` (see
    /// [`crate::engine::Scheduler::past_schedules`]).
    pub past_clamps: u64,
}

impl Counters {
    /// Accumulate another run's counters (condition-level aggregation).
    pub fn merge(&mut self, o: &Counters) {
        self.recorded += o.recorded;
        self.throttled += o.throttled;
        self.evicted += o.evicted;
        self.queue_drops += o.queue_drops;
        self.link_drops += o.link_drops;
        self.rtos += o.rtos;
        self.fast_retransmits += o.fast_retransmits;
        self.backoffs += o.backoffs;
        self.loss_intervals += o.loss_intervals;
        self.scenario_steps += o.scenario_steps;
        self.ecn_marks += o.ecn_marks;
        self.past_clamps += o.past_clamps;
    }
}

/// Ring sizing and sampling cadence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Max events retained per flow; older events are overwritten.
    /// The default (2^18) holds a full 540 s paper condition at the
    /// default sample interval with room to spare.
    pub ring_capacity: usize,
    /// Minimum spacing between recorded events of the same throttled
    /// (flow, kind); `ZERO` disables sampling.
    pub sample_interval: SimDuration,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            ring_capacity: 1 << 18,
            sample_interval: SimDuration::from_millis(10),
        }
    }
}

/// One flow's flight-recorder state.
#[derive(Clone, Debug)]
struct FlowRing {
    flow: u32,
    ring: VecDeque<TelemetryEvent>,
    /// Nanosecond timestamp of the last *recorded* event per kind
    /// (`None` = never, so the t = 0 event is always kept).
    last: [Option<u64>; KIND_COUNT],
}

impl FlowRing {
    fn new(flow: u32) -> Self {
        FlowRing {
            flow,
            ring: VecDeque::new(),
            last: [None; KIND_COUNT],
        }
    }
}

/// The enabled trace bus: per-flow rings plus counters.
#[derive(Clone, Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    /// Small (one entry per flow in the run); linear scan beats hashing.
    flows: Vec<FlowRing>,
    counters: Counters,
}

impl Telemetry {
    /// An empty bus with the given sizing.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Telemetry {
            cfg,
            flows: Vec::new(),
            counters: Counters::default(),
        }
    }

    /// Counter snapshot.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Mutable counters (the runner stamps `past_clamps` here at export).
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// Record one event, applying sampling and ring eviction.
    pub fn record(&mut self, ev: TelemetryEvent) {
        match ev.kind {
            EventKind::QueueDrop => self.counters.queue_drops += 1,
            EventKind::LinkDrop => self.counters.link_drops += 1,
            EventKind::Rto => self.counters.rtos += 1,
            EventKind::FastRetransmit => self.counters.fast_retransmits += 1,
            EventKind::CtrlBackoff => self.counters.backoffs += 1,
            EventKind::LossInterval => self.counters.loss_intervals += 1,
            EventKind::LinkScenario => self.counters.scenario_steps += 1,
            EventKind::EcnMark => self.counters.ecn_marks += 1,
            _ => {}
        }
        let interval = self.cfg.sample_interval.as_nanos();
        let cap = self.cfg.ring_capacity.max(1);
        let idx = match self.flows.iter().position(|f| f.flow == ev.flow) {
            Some(i) => i,
            None => {
                self.flows.push(FlowRing::new(ev.flow));
                self.flows.len() - 1
            }
        };
        let fr = &mut self.flows[idx];
        if interval > 0 && ev.kind.throttled() {
            let k = ev.kind as usize;
            let now = ev.at.as_nanos();
            if let Some(last) = fr.last[k] {
                if now.saturating_sub(last) < interval {
                    self.counters.throttled += 1;
                    return;
                }
            }
            fr.last[k] = Some(now);
        }
        self.counters.recorded += 1;
        if fr.ring.len() >= cap {
            fr.ring.pop_front();
            self.counters.evicted += 1;
        }
        fr.ring.push_back(ev);
    }

    /// All retained events, merged across flows: stable-sorted by time,
    /// ties by flow id, per-flow order preserved. Deterministic for a
    /// deterministic run.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        let mut order: Vec<&FlowRing> = self.flows.iter().collect();
        order.sort_by_key(|f| f.flow);
        let total = order.iter().map(|f| f.ring.len()).sum();
        let mut all = Vec::with_capacity(total);
        for f in order {
            all.extend(f.ring.iter().copied());
        }
        all.sort_by_key(|e| e.at);
        all
    }

    /// Retained event count for one flow (0 if the flow never recorded).
    pub fn flow_len(&self, flow: u32) -> usize {
        self.flows
            .iter()
            .find(|f| f.flow == flow)
            .map_or(0, |f| f.ring.len())
    }

    /// Export the merged trace as CSV (see [`CSV_HEADER`]).
    pub fn to_csv(&self) -> String {
        events_to_csv(&self.events())
    }

    /// Export the merged trace as JSON Lines.
    pub fn to_jsonl(&self) -> String {
        events_to_jsonl(&self.events())
    }
}

/// The recording handle threaded through hot paths. Disabled (the
/// default) it is a null pointer: every helper is one branch and no work,
/// preserving the simulator's wire-speed event rates.
#[derive(Debug, Default)]
pub struct Recorder(Option<Box<Telemetry>>);

impl Recorder {
    /// A no-op recorder.
    pub fn disabled() -> Self {
        Recorder(None)
    }

    /// An active recorder with the given sizing.
    pub fn enabled(cfg: TelemetryConfig) -> Self {
        Recorder(Some(Box::new(Telemetry::new(cfg))))
    }

    /// Whether events are being kept. Callers computing non-trivial
    /// payloads should guard on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The underlying bus, when enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.0.as_deref()
    }

    /// Mutable access to the bus, when enabled.
    pub fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        self.0.as_deref_mut()
    }

    /// Counter snapshot (zeros when disabled).
    pub fn counters(&self) -> Counters {
        self.0
            .as_deref()
            .map(Telemetry::counters)
            .unwrap_or_default()
    }

    /// Record a raw event.
    #[inline]
    pub fn record(&mut self, ev: TelemetryEvent) {
        if let Some(t) = &mut self.0 {
            t.record(ev);
        }
    }

    #[inline]
    fn rec(&mut self, at: SimTime, flow: u32, kind: EventKind, a: u64, b: u64) {
        if let Some(t) = &mut self.0 {
            t.record(TelemetryEvent {
                at,
                flow,
                kind,
                a,
                b,
            });
        }
    }

    /// Congestion-window update after an ACK.
    #[inline]
    pub fn cwnd(&mut self, at: SimTime, flow: u32, cwnd: u64, ssthresh: u64) {
        self.rec(at, flow, EventKind::Cwnd, cwnd, ssthresh);
    }

    /// Pacing-rate update.
    #[inline]
    pub fn pacing(&mut self, at: SimTime, flow: u32, bps: u64) {
        self.rec(at, flow, EventKind::Pacing, bps, 0);
    }

    /// Queue backlog after an enqueue (link scope).
    #[inline]
    pub fn queue_depth(&mut self, at: SimTime, link: u64, backlog_bytes: u64) {
        self.rec(at, GLOBAL_FLOW, EventKind::QueueDepth, backlog_bytes, link);
    }

    /// Queueing delay of a departing packet.
    #[inline]
    pub fn queue_sojourn(&mut self, at: SimTime, flow: u32, link: u64, sojourn: SimDuration) {
        self.rec(at, flow, EventKind::QueueSojourn, sojourn.as_nanos(), link);
    }

    /// Packet dropped by the queue discipline.
    #[inline]
    pub fn queue_drop(&mut self, at: SimTime, flow: u32, link: u64, pkt_bytes: u64) {
        self.rec(at, flow, EventKind::QueueDrop, link, pkt_bytes);
    }

    /// Packet dropped by link impairment.
    #[inline]
    pub fn link_drop(&mut self, at: SimTime, flow: u32, link: u64, pkt_bytes: u64) {
        self.rec(at, flow, EventKind::LinkDrop, link, pkt_bytes);
    }

    /// Link serializer busy (link scope).
    #[inline]
    pub fn link_busy(&mut self, at: SimTime, link: u64, wait: SimDuration) {
        self.rec(at, GLOBAL_FLOW, EventKind::LinkBusy, link, wait.as_nanos());
    }

    /// Encoder target-rate decision.
    #[inline]
    pub fn encoder_rate(&mut self, at: SimTime, flow: u32, bps: u64) {
        self.rec(at, flow, EventKind::EncoderRate, bps, 0);
    }

    /// Controller backoff (`reason`: 0 = delay, 1 = loss).
    #[inline]
    pub fn ctrl_backoff(&mut self, at: SimTime, flow: u32, bps: u64, reason: u64) {
        self.rec(at, flow, EventKind::CtrlBackoff, bps, reason);
    }

    /// TFRC loss-interval close.
    #[inline]
    pub fn loss_interval(&mut self, at: SimTime, flow: u32, pkts: u64) {
        self.rec(at, flow, EventKind::LossInterval, pkts, 0);
    }

    /// Retransmission timeout.
    #[inline]
    pub fn rto(&mut self, at: SimTime, flow: u32, next_rto: SimDuration, backoff: u64) {
        self.rec(at, flow, EventKind::Rto, next_rto.as_nanos(), backoff);
    }

    /// Fast retransmit.
    #[inline]
    pub fn fast_retransmit(&mut self, at: SimTime, flow: u32, cwnd_after: u64) {
        self.rec(at, flow, EventKind::FastRetransmit, cwnd_after, 0);
    }

    /// Frame entering the send pipeline.
    #[inline]
    pub fn frame(&mut self, at: SimTime, flow: u32, frame_bytes: u64, chunks: u64) {
        self.rec(at, flow, EventKind::Frame, frame_bytes, chunks);
    }

    /// A link-scenario step was applied (link scope). `action` is the
    /// netsim `ScenarioAction` wire code.
    #[inline]
    pub fn link_scenario(&mut self, at: SimTime, link: u64, action: u64) {
        self.rec(at, GLOBAL_FLOW, EventKind::LinkScenario, link, action);
    }

    /// An AQM CE-marked an ECN-capable packet instead of dropping it.
    #[inline]
    pub fn ecn_mark(&mut self, at: SimTime, flow: u32, link: u64, pkt_bytes: u64) {
        self.rec(at, flow, EventKind::EcnMark, link, pkt_bytes);
    }
}

// ---------------------------------------------------------------------------
// Export / import
// ---------------------------------------------------------------------------

/// CSV schema. `t_s` carries nanosecond precision (9 decimals), which
/// round-trips exactly for any simulation span the engine supports.
pub const CSV_HEADER: &str = "t_s,flow,kind,a,b";

/// Render events as CSV under [`CSV_HEADER`].
pub fn events_to_csv(events: &[TelemetryEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 48 + CSV_HEADER.len() + 1);
    out.push_str(CSV_HEADER);
    out.push('\n');
    for e in events {
        let _ = writeln!(
            out,
            "{:.9},{},{},{},{}",
            e.at.as_secs_f64(),
            e.flow,
            e.kind.name(),
            e.a,
            e.b
        );
    }
    out
}

/// Render events as JSON Lines, one fixed-shape object per line:
/// `{"t_s":..,"flow":..,"kind":"..","a":..,"b":..}`.
pub fn events_to_jsonl(events: &[TelemetryEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 72);
    for e in events {
        let _ = writeln!(
            out,
            "{{\"t_s\":{:.9},\"flow\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            e.at.as_secs_f64(),
            e.flow,
            e.kind.name(),
            e.a,
            e.b
        );
    }
    out
}

fn parse_t_s(s: &str, line_no: usize) -> Result<SimTime, String> {
    let t: f64 = s
        .parse()
        .map_err(|_| format!("line {line_no}: bad t_s {s:?}"))?;
    if !t.is_finite() || t < 0.0 {
        return Err(format!("line {line_no}: t_s out of range: {s:?}"));
    }
    Ok(SimTime::from_nanos((t * 1e9).round() as u64))
}

/// Parse a trace produced by [`events_to_csv`]. Strict: exact header,
/// five fields per row, known kinds.
pub fn parse_csv(input: &str) -> Result<Vec<TelemetryEvent>, String> {
    let mut lines = input.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h == CSV_HEADER => {}
        Some((_, h)) => return Err(format!("bad header {h:?}, expected {CSV_HEADER:?}")),
        None => return Err("empty input".into()),
    }
    let mut out = Vec::new();
    for (i, line) in lines {
        let n = i + 1;
        if line.is_empty() {
            continue;
        }
        let mut f = line.split(',');
        let (Some(t), Some(flow), Some(kind), Some(a), Some(b), None) =
            (f.next(), f.next(), f.next(), f.next(), f.next(), f.next())
        else {
            return Err(format!("line {n}: expected 5 fields: {line:?}"));
        };
        out.push(TelemetryEvent {
            at: parse_t_s(t, n)?,
            flow: flow
                .parse()
                .map_err(|_| format!("line {n}: bad flow {flow:?}"))?,
            kind: EventKind::from_name(kind)
                .ok_or_else(|| format!("line {n}: unknown kind {kind:?}"))?,
            a: a.parse().map_err(|_| format!("line {n}: bad a {a:?}"))?,
            b: b.parse().map_err(|_| format!("line {n}: bad b {b:?}"))?,
        });
    }
    Ok(out)
}

/// Pull `"key":value` out of one JSONL object, tolerating field order.
fn json_value<'a>(line: &'a str, key: &str, line_no: usize) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start = line
        .find(&pat)
        .ok_or_else(|| format!("line {line_no}: missing {key:?}"))?
        + pat.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .ok_or_else(|| format!("line {line_no}: unterminated {key:?}"))?;
    Ok(rest[..end].trim())
}

/// Parse a trace produced by [`events_to_jsonl`].
pub fn parse_jsonl(input: &str) -> Result<Vec<TelemetryEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let n = i + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if !line.starts_with('{') || !line.ends_with('}') {
            return Err(format!("line {n}: not a JSON object: {line:?}"));
        }
        let t = json_value(line, "t_s", n)?;
        let flow = json_value(line, "flow", n)?;
        let kind = json_value(line, "kind", n)?;
        let a = json_value(line, "a", n)?;
        let b = json_value(line, "b", n)?;
        let kind = kind
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("line {n}: kind must be a string: {kind:?}"))?;
        out.push(TelemetryEvent {
            at: parse_t_s(t, n)?,
            flow: flow
                .parse()
                .map_err(|_| format!("line {n}: bad flow {flow:?}"))?,
            kind: EventKind::from_name(kind)
                .ok_or_else(|| format!("line {n}: unknown kind {kind:?}"))?,
            a: a.parse().map_err(|_| format!("line {n}: bad a {a:?}"))?,
            b: b.parse().map_err(|_| format!("line {n}: bad b {b:?}"))?,
        });
    }
    Ok(out)
}

/// Schema invariants beyond per-row syntax: non-empty, timestamps
/// non-decreasing. Used by the CI trace gate.
pub fn validate_events(events: &[TelemetryEvent]) -> Result<(), String> {
    if events.is_empty() {
        return Err("trace is empty".into());
    }
    for w in events.windows(2) {
        if w[1].at < w[0].at {
            return Err(format!(
                "timestamps regress: {} s then {} s",
                w[0].at.as_secs_f64(),
                w[1].at.as_secs_f64()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ns: u64, flow: u32, kind: EventKind, a: u64, b: u64) -> TelemetryEvent {
        TelemetryEvent {
            at: SimTime::from_nanos(ns),
            flow,
            kind,
            a,
            b,
        }
    }

    fn small() -> Telemetry {
        Telemetry::new(TelemetryConfig {
            ring_capacity: 4,
            sample_interval: SimDuration::from_millis(10),
        })
    }

    #[test]
    fn first_event_at_time_zero_is_kept() {
        let mut t = small();
        t.record(ev(0, 1, EventKind::Cwnd, 100, 200));
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.counters().recorded, 1);
    }

    #[test]
    fn throttle_suppresses_within_interval_per_flow_and_kind() {
        let mut t = small();
        t.record(ev(0, 1, EventKind::Cwnd, 1, 0));
        t.record(ev(5_000_000, 1, EventKind::Cwnd, 2, 0)); // +5 ms: dropped
        t.record(ev(5_000_000, 1, EventKind::Pacing, 9, 0)); // other kind: kept
        t.record(ev(5_000_000, 2, EventKind::Cwnd, 3, 0)); // other flow: kept
        t.record(ev(10_000_000, 1, EventKind::Cwnd, 4, 0)); // +10 ms: kept
        let c = t.counters();
        assert_eq!(c.recorded, 4);
        assert_eq!(c.throttled, 1);
    }

    #[test]
    fn decision_grade_kinds_never_throttle() {
        let mut t = small();
        for i in 0..3 {
            t.record(ev(i, 1, EventKind::QueueDrop, 0, 1500));
            t.record(ev(i, 1, EventKind::Rto, 1, 0));
        }
        let c = t.counters();
        assert_eq!(c.throttled, 0);
        assert_eq!(c.queue_drops, 3);
        assert_eq!(c.rtos, 3);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = small(); // capacity 4
        for i in 0..6u64 {
            t.record(ev(i, 7, EventKind::LossInterval, i, 0));
        }
        let events = t.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].a, 2, "oldest two evicted");
        assert_eq!(t.counters().evicted, 2);
        assert_eq!(t.flow_len(7), 4);
    }

    #[test]
    fn merge_orders_by_time_then_flow() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.record(ev(50, 9, EventKind::Rto, 0, 0));
        t.record(ev(50, 3, EventKind::Rto, 1, 0));
        t.record(ev(10, 9, EventKind::Rto, 2, 0));
        let events = t.events();
        assert_eq!(events[0].at.as_nanos(), 10);
        assert_eq!(events[1].flow, 3, "tie broken by flow id");
        assert_eq!(events[2].flow, 9);
        validate_events(&events).unwrap();
    }

    #[test]
    fn csv_round_trips_exactly() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        t.record(ev(0, 0, EventKind::Cwnd, 14_480, u64::MAX));
        t.record(ev(
            539_999_999_999,
            4,
            EventKind::QueueSojourn,
            1_234_567,
            2,
        ));
        t.record(ev(
            185_000_000_001,
            GLOBAL_FLOW,
            EventKind::QueueDepth,
            103_124,
            2,
        ));
        let events = t.events();
        let parsed = parse_csv(&t.to_csv()).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let mut t = Telemetry::new(TelemetryConfig::default());
        for &k in &EventKind::ALL {
            t.record(ev(1_000_000_007, 3, k, 42, 7));
        }
        let events = t.events();
        let parsed = parse_jsonl(&t.to_jsonl()).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn parsers_reject_malformed_input() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("time,flow\n").is_err());
        assert!(parse_csv("t_s,flow,kind,a,b\n1.0,0,cwnd,1\n").is_err());
        assert!(parse_csv("t_s,flow,kind,a,b\n1.0,0,warp,1,2\n").is_err());
        assert!(parse_csv("t_s,flow,kind,a,b\n-1.0,0,cwnd,1,2\n").is_err());
        assert!(parse_jsonl("not json\n").is_err());
        assert!(parse_jsonl("{\"t_s\":1.0,\"flow\":0}\n").is_err());
        assert!(
            parse_jsonl("{\"t_s\":1.0,\"flow\":0,\"kind\":\"warp\",\"a\":1,\"b\":2}\n").is_err()
        );
    }

    #[test]
    fn jsonl_parse_tolerates_field_order() {
        let line = "{\"kind\":\"rto\",\"b\":2,\"a\":1,\"flow\":5,\"t_s\":0.5}\n";
        let events = parse_jsonl(line).unwrap();
        assert_eq!(events, vec![ev(500_000_000, 5, EventKind::Rto, 1, 2)]);
    }

    #[test]
    fn validate_flags_empty_and_regressing() {
        assert!(validate_events(&[]).is_err());
        let good = [
            ev(1, 0, EventKind::Cwnd, 1, 1),
            ev(2, 0, EventKind::Cwnd, 2, 1),
        ];
        assert!(validate_events(&good).is_ok());
        let bad = [
            ev(2, 0, EventKind::Cwnd, 1, 1),
            ev(1, 0, EventKind::Cwnd, 2, 1),
        ];
        assert!(validate_events(&bad).is_err());
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut r = Recorder::disabled();
        r.cwnd(SimTime::from_nanos(1), 0, 1, 2);
        r.queue_drop(SimTime::from_nanos(2), 0, 1, 1500);
        assert!(!r.is_enabled());
        assert!(r.telemetry().is_none());
        assert_eq!(r.counters(), Counters::default());
    }

    #[test]
    fn enabled_recorder_records_through_helpers() {
        let mut r = Recorder::enabled(TelemetryConfig::default());
        let t0 = SimTime::from_nanos(0);
        r.cwnd(t0, 4, 14_480, u64::MAX);
        r.queue_depth(t0, 2, 50_000);
        r.encoder_rate(t0, 0, 25_000_000);
        r.ctrl_backoff(t0, 0, 12_000_000, 1);
        let tel = r.telemetry().unwrap();
        assert_eq!(tel.events().len(), 4);
        assert_eq!(tel.counters().backoffs, 1);
        let global: Vec<_> = tel
            .events()
            .into_iter()
            .filter(|e| e.flow == GLOBAL_FLOW)
            .collect();
        assert_eq!(global.len(), 1);
        assert_eq!(global[0].kind, EventKind::QueueDepth);
    }

    #[test]
    fn counters_merge_adds() {
        let mut a = Counters {
            recorded: 1,
            queue_drops: 2,
            past_clamps: 3,
            ..Counters::default()
        };
        let b = Counters {
            recorded: 10,
            queue_drops: 20,
            past_clamps: 30,
            ..Counters::default()
        };
        a.merge(&b);
        assert_eq!(a.recorded, 11);
        assert_eq!(a.queue_drops, 22);
        assert_eq!(a.past_clamps, 33);
    }
}
