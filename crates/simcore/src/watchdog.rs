//! Run watchdog: bounded-resource guards for adversarial simulations.
//!
//! Chaos campaigns feed the engine schedules no curated grid would pick,
//! so a single runaway trial (an event storm from a pathological
//! re-rate cascade, or a livelock where handlers keep rescheduling at
//! the same instant) must not hang the whole fleet. The [`Watchdog`]
//! carries two budgets; [`crate::Engine::run_until_guarded`] checks them
//! inside the event loop and aborts *gracefully* into a structured
//! [`SimError`] instead of spinning forever. The guarded loop is
//! bit-identical to the unguarded one for any run that stays inside the
//! budgets: the checks observe counters the engine already maintains and
//! consume no randomness.

use crate::time::SimTime;

/// Budgets for one guarded run. Both are counted per
/// [`crate::Engine::run_until_guarded`] call, not per engine lifetime, so
/// a watchdogged sim can be driven in segments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Watchdog {
    /// Maximum events one guarded run may deliver before it is declared
    /// runaway. The paper-scale testbed run (540 sim-seconds) handles
    /// ~7M events, so the default leaves an order of magnitude of head
    /// room while still bounding a trial to seconds of wall clock.
    pub event_budget: u64,
    /// Maximum consecutive events delivered *without simulated time
    /// advancing* before the run is declared livelocked. Same-instant
    /// bursts are normal (the scheduler has a FIFO fast lane for them);
    /// a million of them means a handler is rescheduling itself at
    /// `now` forever.
    pub livelock_window: u64,
}

impl Watchdog {
    /// Default event budget: ~10× a paper-scale run.
    pub const DEFAULT_EVENT_BUDGET: u64 = 100_000_000;
    /// Default livelock window.
    pub const DEFAULT_LIVELOCK_WINDOW: u64 = 1_000_000;

    /// A watchdog with explicit budgets.
    pub fn new(event_budget: u64, livelock_window: u64) -> Self {
        Watchdog {
            event_budget,
            livelock_window,
        }
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog {
            event_budget: Self::DEFAULT_EVENT_BUDGET,
            livelock_window: Self::DEFAULT_LIVELOCK_WINDOW,
        }
    }
}

/// Structured failure of a guarded simulation run.
///
/// Unlike an invariant-oracle [`crate::Violation`] (which panics, because
/// a broken conservation law means the simulation state itself is
/// untrustworthy), a `SimError` is a *recoverable* verdict: the run was
/// abandoned but the process is fine, so a fleet can record the failure
/// and move to the next trial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The run delivered more events than the watchdog's budget.
    EventBudgetExceeded {
        /// The budget that was exhausted.
        budget: u64,
        /// Simulated time at which the run was abandoned.
        at: SimTime,
    },
    /// The run delivered `window` consecutive events without simulated
    /// time advancing.
    Livelock {
        /// The livelock window that was exhausted.
        window: u64,
        /// The instant the clock was stuck at.
        at: SimTime,
    },
    /// A configuration or scenario was rejected before (or instead of)
    /// tripping an assertion deep inside the simulator.
    InvalidScenario {
        /// Human-readable description of the rejected input.
        detail: String,
    },
}

impl SimError {
    /// Short stable tag for histograms and repro files
    /// (`event-budget` / `livelock` / `invalid-scenario`).
    pub fn tag(&self) -> &'static str {
        match self {
            SimError::EventBudgetExceeded { .. } => "event-budget",
            SimError::Livelock { .. } => "livelock",
            SimError::InvalidScenario { .. } => "invalid-scenario",
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::EventBudgetExceeded { budget, at } => write!(
                f,
                "sim aborted: event budget {budget} exhausted at t={}ns",
                at.as_nanos()
            ),
            SimError::Livelock { window, at } => write!(
                f,
                "sim aborted: {window} events without time advancing at t={}ns",
                at.as_nanos()
            ),
            SimError::InvalidScenario { detail } => {
                write!(f, "invalid scenario: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}
