//! # gsrepro-simcore
//!
//! A small, deterministic discrete-event simulation (DES) engine.
//!
//! This crate is the foundation of the testbed that reproduces
//! *"Measurement of Cloud-based Game Streaming System Response to Competing
//! TCP Cubic or TCP BBR Flows"* (Xu & Claypool, IMC '22). It knows nothing
//! about networks; it provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`Scheduler`] / [`Engine`] — an event queue with deterministic
//!   tie-breaking and a run loop generic over a user-defined [`World`],
//! * [`units`] — byte counts and bit rates with transmission-time and
//!   bandwidth-delay-product arithmetic,
//! * [`rng`] — seed derivation so every simulated entity gets an independent,
//!   reproducible random stream,
//! * [`stats`] — online mean/variance, confidence intervals, time-binned
//!   series,
//! * [`telemetry`] — a flight-recorder trace bus: typed per-flow events,
//!   bounded rings, counters, CSV/JSONL export; a no-op when disabled,
//! * [`checks`] — runtime invariant oracles behind the same
//!   zero-cost-when-disabled discipline; an enabled run panics with a
//!   structured report on the first violated conservation law.
//!
//! Determinism is a hard requirement: two runs with the same seed must
//! produce bit-identical results. Events scheduled for the same instant are
//! executed in scheduling order (FIFO), never in allocation or hash order.

pub mod checks;
pub mod engine;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod units;
pub mod watchdog;

pub use checks::{Checks, Violation};
pub use engine::{Engine, SchedStats, Scheduler, TimerHandle, World};
pub use rng::{derive_seed, SimRng};
pub use telemetry::{Recorder, TelemetryConfig, TelemetryEvent};
pub use time::{SimDuration, SimTime};
pub use units::{BitRate, Bytes};
pub use watchdog::{SimError, Watchdog};
