//! Online statistics used by the measurement harness.
//!
//! The paper reports means with standard deviations (Tables 1, 3, 4, 5) and
//! per-time-bin means with 95% confidence intervals across 15 runs
//! (Figure 2). [`Welford`] provides numerically stable single-pass
//! mean/variance; [`TimeBinned`] accumulates a value into fixed-width time
//! bins (the paper's 0.5 s bitrate bins); [`mean_ci95`] computes the
//! Student-t confidence half-width across runs.

use crate::time::{SimDuration, SimTime};

/// Numerically stable online mean and variance (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// The raw `(count, mean, m2)` state, for exact serialization
    /// (checkpoint manifests store `mean`/`m2` as IEEE-754 bit patterns so
    /// a resumed aggregate is bit-identical to the original).
    pub fn parts(&self) -> (u64, f64, f64) {
        (self.n, self.mean, self.m2)
    }

    /// Rebuild an accumulator from [`Welford::parts`] output.
    pub fn from_parts(n: u64, mean: f64, m2: f64) -> Self {
        Welford { n, mean, m2 }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.mean += d * other.n as f64 / n as f64;
        self.n = n;
    }
}

/// Two-sided Student-t critical value at 95% confidence for `df` degrees of
/// freedom. Table-driven for small df (the paper's 15 runs → df = 14 →
/// t = 2.145), asymptotic 1.96 for large df.
pub fn t_crit_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // 1-10
        2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // 11-20
        2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042, // 21-30
    ];
    match df {
        0 => f64::INFINITY,
        d if d <= 30 => TABLE[(d - 1) as usize],
        d if d <= 60 => 2.00,
        _ => 1.96,
    }
}

/// Median of an already-sorted slice; `None` when empty.
///
/// The checked sibling of the old ad-hoc `sorted[n/2 - 1]` benchmarks
/// helper, whose even branch underflowed on an empty slice. Shared by the
/// bench binaries (via `gsrepro-bench`) and the fleet sketches.
pub fn median_sorted(sorted: &[f64]) -> Option<f64> {
    percentile_sorted(sorted, 0.5)
}

/// The `q`-quantile (`0 ≤ q ≤ 1`) of an already-sorted slice by linear
/// interpolation; `None` when empty.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    Some(if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    })
}

/// Mean and 95% confidence half-width of a sample.
///
/// Returns `(mean, half_width)`; the half-width is 0 for samples of size < 2.
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    let mut w = Welford::new();
    for &s in samples {
        w.add(s);
    }
    if w.count() < 2 {
        return (w.mean(), 0.0);
    }
    let se = w.stddev() / (w.count() as f64).sqrt();
    (w.mean(), t_crit_95(w.count() - 1) * se)
}

/// Accumulates a quantity (e.g. bytes delivered) into fixed-width time bins.
///
/// Bin `i` covers `[i*width, (i+1)*width)`. Used for the paper's 0.5 s
/// bitrate series (Figure 2).
#[derive(Clone, Debug)]
pub struct TimeBinned {
    width: SimDuration,
    bins: Vec<f64>,
    /// Start of the bin the last `add` landed in. Simulation time is nearly
    /// monotone, so almost every `add` hits the same bin as its predecessor
    /// and the range test below replaces a 64-bit division on a path that
    /// runs for every sent and delivered packet.
    cached_start: u64,
    cached_idx: usize,
}

impl TimeBinned {
    /// A new series with the given bin width.
    ///
    /// # Panics
    /// Panics if `width` is zero.
    pub fn new(width: SimDuration) -> Self {
        assert!(!width.is_zero(), "bin width must be positive");
        TimeBinned {
            width,
            bins: Vec::new(),
            cached_start: 0,
            cached_idx: 0,
        }
    }

    /// Bin width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// Add `amount` to the bin containing `at`.
    pub fn add(&mut self, at: SimTime, amount: f64) {
        let t = at.as_nanos();
        let w = self.width.as_nanos();
        // The cached bin covers `[cached_start, cached_start + width)`;
        // dividing only on a bin change keeps the result bit-identical.
        let idx = if t.wrapping_sub(self.cached_start) < w {
            self.cached_idx
        } else {
            let idx = (t / w) as usize;
            self.cached_start = idx as u64 * w;
            self.cached_idx = idx;
            idx
        };
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += amount;
    }

    /// The accumulated bins (trailing bins that never received data are
    /// absent; use [`TimeBinned::bin_or_zero`] for uniform access).
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Value of bin `idx`, zero if beyond the recorded range.
    pub fn bin_or_zero(&self, idx: usize) -> f64 {
        self.bins.get(idx).copied().unwrap_or(0.0)
    }

    /// Number of recorded bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True if no data was recorded.
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Midpoint time of bin `idx` in seconds (for plotting).
    pub fn bin_mid_secs(&self, idx: usize) -> f64 {
        (idx as f64 + 0.5) * self.width.as_secs_f64()
    }

    /// Mean of the bins whose *midpoints* fall in `[from, to)`, after
    /// applying `scale` to each bin (e.g. bytes-per-bin → Mb/s).
    pub fn mean_over(&self, from: SimTime, to: SimTime, scale: f64) -> f64 {
        self.welford_over(from, to, scale).mean()
    }

    /// Full online statistics (count/mean/variance) over the bins whose
    /// midpoints fall in `[from, to)`, scaled. Borrows the series — the
    /// streaming-aggregation path (fleet campaigns) reads windowed stats
    /// per run without cloning any bin vector.
    pub fn welford_over(&self, from: SimTime, to: SimTime, scale: f64) -> Welford {
        let mut w = Welford::new();
        for idx in 0..self.len() {
            let mid = SimDuration::from_secs_f64(self.bin_mid_secs(idx));
            let mid_t = SimTime::ZERO + mid;
            if mid_t >= from && mid_t < to {
                w.add(self.bins[idx] * scale);
            }
        }
        w
    }
}

/// A reservoir of raw samples with summary helpers; used where the paper
/// reports mean (σ), e.g. RTT tables.
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        self.values.push(x);
    }

    /// All recorded values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        let mut w = Welford::new();
        for &v in &self.values {
            w.add(v);
        }
        w.stddev()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation; 0 if empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let mut v = self.values.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        percentile_sorted(&v, q).unwrap_or(0.0)
    }
}

/// Fixed-width histogram over a bounded range; out-of-range samples clamp
/// into the edge buckets. Used for RTT and frame-interval distributions.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// A histogram of `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo, "histogram range must be positive");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            count: 0,
        }
    }

    /// Record one sample (clamped into the edge buckets).
    pub fn add(&mut self, x: f64) {
        let n = self.buckets.len();
        let pos = (x - self.lo) / (self.hi - self.lo) * n as f64;
        let idx = (pos.floor().max(0.0) as usize).min(n - 1);
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Lower edge of bucket `i`.
    pub fn bucket_lo(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / self.buckets.len() as f64
    }

    /// Approximate quantile from the bucket midpoints (0 if empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        let w = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bucket_lo(i) + w / 2.0;
            }
        }
        self.hi
    }

    /// ASCII sparkline of the distribution (one glyph per bucket).
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        self.buckets
            .iter()
            .map(|&c| GLYPHS[(c * 7).div_ceil(max).min(7) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0, 30.0, 40.0];
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut all = Welford::new();
        for &x in &a_data {
            a.add(x);
            all.add(x);
        }
        for &x in &b_data {
            b.add(x);
            all.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.add(1.0);
        a.add(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&Welford::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut empty = Welford::new();
        let mut b = Welford::new();
        b.add(5.0);
        empty.merge(&b);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 5.0);
    }

    #[test]
    fn t_table_values() {
        assert_eq!(t_crit_95(14), 2.145); // the paper's 15 runs
        assert_eq!(t_crit_95(1), 12.706);
        assert_eq!(t_crit_95(1_000), 1.96);
        assert!(t_crit_95(0).is_infinite());
    }

    #[test]
    fn checked_median_and_percentile() {
        // Empty: the old unchecked helper underflowed `n/2 - 1` here.
        assert_eq!(median_sorted(&[]), None);
        assert_eq!(percentile_sorted(&[], 0.5), None);
        // Single.
        assert_eq!(median_sorted(&[7.0]), Some(7.0));
        assert_eq!(percentile_sorted(&[7.0], 0.99), Some(7.0));
        // Even: mean of the middle pair.
        assert_eq!(median_sorted(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
        // Odd: the middle element.
        assert_eq!(median_sorted(&[1.0, 2.0, 4.0]), Some(2.0));
        // Percentile interpolates and clamps q.
        assert_eq!(percentile_sorted(&[0.0, 10.0], 0.25), Some(2.5));
        assert_eq!(percentile_sorted(&[0.0, 10.0], -1.0), Some(0.0));
        assert_eq!(percentile_sorted(&[0.0, 10.0], 2.0), Some(10.0));
    }

    #[test]
    fn welford_parts_round_trip() {
        let mut w = Welford::new();
        for x in [1.5, 2.5, -3.25] {
            w.add(x);
        }
        let (n, mean, m2) = w.parts();
        let back = Welford::from_parts(n, mean, m2);
        assert_eq!(back.count(), w.count());
        assert_eq!(back.mean().to_bits(), w.mean().to_bits());
        assert_eq!(back.variance().to_bits(), w.variance().to_bits());
    }

    #[test]
    fn welford_over_matches_mean_over() {
        let mut tb = TimeBinned::new(SimDuration::from_secs(1));
        for i in 0..10 {
            tb.add(SimTime::from_secs(i), (i + 1) as f64);
        }
        let w = tb.welford_over(SimTime::from_secs(2), SimTime::from_secs(5), 2.0);
        assert_eq!(w.count(), 3);
        assert_eq!(
            w.mean(),
            tb.mean_over(SimTime::from_secs(2), SimTime::from_secs(5), 2.0)
        );
        assert!(w.stddev() > 0.0);
    }

    #[test]
    fn ci_on_known_sample() {
        let s = [10.0, 12.0, 14.0, 16.0, 18.0];
        let (m, hw) = mean_ci95(&s);
        assert!((m - 14.0).abs() < 1e-12);
        // stddev = sqrt(10), se = sqrt(2), t(4) = 2.776
        assert!((hw - 2.776 * (2.0f64).sqrt()).abs() < 1e-9);
        assert_eq!(mean_ci95(&[5.0]), (5.0, 0.0));
        assert_eq!(mean_ci95(&[]), (0.0, 0.0));
    }

    #[test]
    fn time_binning() {
        let mut tb = TimeBinned::new(SimDuration::from_millis(500));
        tb.add(SimTime::from_millis(100), 10.0);
        tb.add(SimTime::from_millis(499), 5.0);
        tb.add(SimTime::from_millis(500), 2.0); // next bin
        tb.add(SimTime::from_millis(2600), 1.0); // bin 5
        assert_eq!(tb.len(), 6);
        assert_eq!(tb.bin_or_zero(0), 15.0);
        assert_eq!(tb.bin_or_zero(1), 2.0);
        assert_eq!(tb.bin_or_zero(2), 0.0);
        assert_eq!(tb.bin_or_zero(5), 1.0);
        assert_eq!(tb.bin_or_zero(99), 0.0);
        assert!((tb.bin_mid_secs(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn binned_mean_over_window() {
        let mut tb = TimeBinned::new(SimDuration::from_secs(1));
        for i in 0..10 {
            tb.add(SimTime::from_secs(i), (i + 1) as f64);
        }
        // Bins 2,3,4 have values 3,4,5 → mean 4; scale by 2 → 8.
        let m = tb.mean_over(SimTime::from_secs(2), SimTime::from_secs(5), 2.0);
        assert!((m - 8.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let mut s = Samples::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.add(v);
        }
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(0.5), 3.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.quantile(0.25), 2.0);
        assert_eq!(s.mean(), 3.0);
        assert!(Samples::new().quantile(0.5) == 0.0);
    }

    #[test]
    fn histogram_basic() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for v in [5.0, 15.0, 15.5, 95.0] {
            h.add(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.bucket_lo(1), 10.0);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.add(-100.0);
        h.add(1e9);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[4], 1);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.add(i as f64);
        }
        assert!((h.quantile(0.5) - 50.0).abs() < 2.0);
        assert!((h.quantile(0.99) - 99.0).abs() < 2.0);
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_sparkline_shape() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for _ in 0..8 {
            h.add(0.5);
        }
        h.add(2.5);
        let s = h.sparkline();
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('█'));
    }

    #[test]
    fn zero_width_bins_panic() {
        let r = std::panic::catch_unwind(|| TimeBinned::new(SimDuration::ZERO));
        assert!(r.is_err());
    }
}
