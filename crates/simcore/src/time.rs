//! Simulated time.
//!
//! [`SimTime`] is an instant measured in nanoseconds since the start of the
//! simulation; [`SimDuration`] is a span between two instants. Both are thin
//! wrappers over `u64`, giving ~584 years of range — far beyond the paper's
//! nine-minute experiment runs — with exact integer arithmetic so event
//! ordering never depends on floating-point rounding.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "armed but never firing" timer value.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole seconds since the epoch.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds since the epoch.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only — never use
    /// floats to decide event ordering).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Duration since `earlier`. Panics in debug builds if `earlier > self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "since() called with a later time");
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Negative or non-finite input clamps to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Nanoseconds in this duration.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds as a float (reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds as a float (reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by a non-negative float, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> Self {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "duration underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_millis(2).as_millis_f64(), 2.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(1500);
        assert_eq!((t + d).as_nanos(), 11_500_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t - d).as_secs_f64(), 8.5);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(5), SimTime::ZERO);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.001),
            SimDuration::from_millis(1)
        );
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }

    #[test]
    fn mul_div() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(3)), "3.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(4)), "4.00ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }
}
