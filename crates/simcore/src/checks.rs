//! Runtime invariant oracles: always-compiled, zero-cost-when-disabled
//! self-checks for simulation runs.
//!
//! Every number the testbed reports rests on conservation laws the
//! simulator is supposed to uphold — packets are neither minted nor lost
//! without accounting, token buckets never hold more than their burst, the
//! event clock never runs backwards. This module provides the [`Checks`]
//! handle those oracles run through. It follows the same discipline as the
//! telemetry [`crate::telemetry::Recorder`]: a disabled handle is a null
//! pointer and every check site is a single branch, so paper-scale grids
//! keep their wire-speed event rates; an enabled handle evaluates each
//! oracle and **panics with a structured [`Violation`] report on the first
//! failure** — a violated invariant means every downstream number is
//! untrustworthy, so there is nothing useful to do but stop loudly.
//!
//! Domain oracles (packet conservation, queue bounds, token conservation)
//! live next to the state they audit — see `gsrepro-netsim`'s `checks`
//! module; this module owns the handle, the report format, and the one
//! domain-free oracle: the monotonic event clock.

use std::fmt;

use crate::time::SimTime;

/// A failed invariant, as reported in the panic payload.
///
/// The `Display` rendering is the structured report users see:
///
/// ```text
/// invariant violation: packet-conservation
///   subject: network
///   at     : 12.345678901 s
///   detail : sent 100 + dup 2 != delivered 96 + dropped 3 + in-flight 2
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Simulated time at which the oracle fired.
    pub at: SimTime,
    /// Stable oracle name (e.g. `"packet-conservation"`).
    pub oracle: &'static str,
    /// What was being audited (a link, a flow, the whole network).
    pub subject: String,
    /// Human-readable account of the mismatch, with the numbers.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violation: {}", self.oracle)?;
        writeln!(f, "  subject: {}", self.subject)?;
        writeln!(f, "  at     : {:.9} s", self.at.as_secs_f64())?;
        write!(f, "  detail : {}", self.detail)
    }
}

/// Panic with a structured [`Violation`] report.
pub fn fail(at: SimTime, oracle: &'static str, subject: String, detail: String) -> ! {
    let v = Violation {
        at,
        oracle,
        subject,
        detail,
    };
    panic!("{v}");
}

#[derive(Debug, Default)]
struct CheckState {
    performed: u64,
    last_event_at: Option<SimTime>,
}

/// The oracle handle threaded through hot paths. Disabled (the default) it
/// is a null pointer: every check site is one branch and no work. Enabled,
/// each oracle evaluation increments [`Checks::performed`] and panics with
/// a [`Violation`] report on the first failure.
#[derive(Debug, Default)]
pub struct Checks(Option<Box<CheckState>>);

impl Checks {
    /// A no-op handle.
    pub fn disabled() -> Self {
        Checks(None)
    }

    /// An active handle.
    pub fn enabled() -> Self {
        Checks(Some(Box::default()))
    }

    /// Whether oracles run. Callers computing non-trivial audit inputs
    /// should guard on this, exactly like `Recorder::is_enabled`.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Number of oracle evaluations performed so far (0 when disabled).
    /// Exported per run so "checks were on" is itself checkable.
    pub fn performed(&self) -> u64 {
        self.0.as_ref().map_or(0, |s| s.performed)
    }

    /// Evaluate one oracle. `subject` and `detail` are only invoked on
    /// failure, so check sites stay allocation-free on the happy path.
    #[inline]
    pub fn check(
        &mut self,
        ok: bool,
        at: SimTime,
        oracle: &'static str,
        subject: impl FnOnce() -> String,
        detail: impl FnOnce() -> String,
    ) {
        if let Some(s) = &mut self.0 {
            s.performed += 1;
            if !ok {
                fail(at, oracle, subject(), detail());
            }
        }
    }

    /// The monotonic-clock oracle: event times handed to the world must
    /// never decrease. Call once per dispatched event.
    #[inline]
    pub fn clock(&mut self, now: SimTime) {
        if let Some(s) = &mut self.0 {
            s.performed += 1;
            if let Some(last) = s.last_event_at {
                if now < last {
                    fail(
                        now,
                        "monotonic-clock",
                        "event loop".into(),
                        format!(
                            "event at {:.9} s dispatched after one at {:.9} s",
                            now.as_secs_f64(),
                            last.as_secs_f64()
                        ),
                    );
                }
            }
            s.last_event_at = Some(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_checks_are_inert() {
        let mut c = Checks::disabled();
        assert!(!c.is_enabled());
        // A failing condition must not fire when disabled.
        c.check(
            false,
            SimTime::ZERO,
            "test",
            || unreachable!("subject built while disabled"),
            || unreachable!("detail built while disabled"),
        );
        c.clock(SimTime::from_secs(2));
        c.clock(SimTime::from_secs(1));
        assert_eq!(c.performed(), 0);
    }

    #[test]
    fn enabled_checks_count_and_pass() {
        let mut c = Checks::enabled();
        assert!(c.is_enabled());
        c.check(true, SimTime::ZERO, "t", || "s".into(), || "d".into());
        c.clock(SimTime::ZERO);
        c.clock(SimTime::from_secs(1));
        c.clock(SimTime::from_secs(1)); // equal times are fine
        assert_eq!(c.performed(), 4);
    }

    #[test]
    #[should_panic(expected = "invariant violation: test-oracle")]
    fn failing_check_panics_with_report() {
        let mut c = Checks::enabled();
        c.check(
            false,
            SimTime::from_millis(1500),
            "test-oracle",
            || "link 3".into(),
            || "1 != 2".into(),
        );
    }

    #[test]
    #[should_panic(expected = "invariant violation: monotonic-clock")]
    fn clock_regression_panics() {
        let mut c = Checks::enabled();
        c.clock(SimTime::from_secs(5));
        c.clock(SimTime::from_secs(4));
    }

    #[test]
    fn violation_report_is_structured() {
        let v = Violation {
            at: SimTime::from_millis(1500),
            oracle: "packet-conservation",
            subject: "network".into(),
            detail: "sent 2 != delivered 1 + dropped 0 + in-flight 0".into(),
        };
        let s = v.to_string();
        assert!(s.contains("invariant violation: packet-conservation"));
        assert!(s.contains("subject: network"));
        assert!(s.contains("at     : 1.500000000 s"));
        assert!(s.contains("detail : sent 2"));
    }
}
