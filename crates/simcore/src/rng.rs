//! Deterministic random-number streams.
//!
//! Every stochastic entity in the simulation (frame-size jitter, feedback
//! timing jitter, cross-traffic arrivals, ...) draws from its own RNG whose
//! seed is *derived* from the experiment's base seed and a stable stream
//! identifier. This keeps runs reproducible and — crucially — keeps entities
//! independent: adding an RNG draw in one component never perturbs the
//! sequence seen by another.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG type used throughout the simulator.
///
/// `SmallRng` (xoshiro256++ on 64-bit platforms) is fast and, seeded
/// explicitly, fully deterministic. It is *not* cryptographic, which is fine:
/// nothing here is adversarial.
pub type SimRng = SmallRng;

/// Derive an independent seed from `(base, stream)`.
///
/// Uses two rounds of the splitmix64 finalizer, which is the recommended way
/// to expand one seed into many decorrelated ones.
#[inline]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = splitmix64(z);
    z = splitmix64(z);
    z
}

/// Create a [`SimRng`] for `(base, stream)`.
#[inline]
pub fn rng_for(base: u64, stream: u64) -> SimRng {
    SimRng::seed_from_u64(derive_seed(base, stream))
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary label (e.g. a condition name) into a stream id.
///
/// FNV-1a: stable across platforms and Rust versions, unlike
/// `std::hash::DefaultHasher`.
#[inline]
pub fn stream_id(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_eq!(stream_id("stadia"), stream_id("stadia"));
    }

    #[test]
    fn streams_are_decorrelated() {
        // Different stream ids from the same base must give different seeds.
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn rng_sequences_reproduce() {
        let mut r1 = rng_for(1, 2);
        let mut r2 = rng_for(1, 2);
        for _ in 0..100 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn adjacent_streams_do_not_collide_over_a_range() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..10_000u64 {
            assert!(seen.insert(derive_seed(0xDEAD_BEEF, s)), "seed collision");
        }
    }

    #[test]
    fn label_hashing_distinguishes_labels() {
        assert_ne!(stream_id("stadia"), stream_id("luna"));
        assert_ne!(stream_id(""), stream_id(" "));
    }
}
