//! The discrete-event engine: a time-ordered event queue and a run loop.
//!
//! The engine is generic over a [`World`] — the complete mutable state of a
//! simulation — and its associated event type. Components never hold
//! references to each other; they communicate by scheduling events, which the
//! engine delivers back to [`World::handle`] in timestamp order.
//!
//! # Determinism
//!
//! Two events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO), enforced by a monotonically increasing sequence
//! number used as a tie-breaker. Event ordering therefore never depends on
//! heap internals, allocation order, or hashing.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The complete mutable state of a simulation.
pub trait World {
    /// The event alphabet of this simulation.
    type Event;

    /// Handle one event. `sched.now()` is the event's timestamp; new events
    /// may be scheduled at or after that instant.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Ordering intentionally ignores the event payload: (time, seq) is a total
// order because seq is unique.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The event queue. Handed to [`World::handle`] so handlers can schedule
/// follow-up events.
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Entry<E>>>,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Current simulated time (the timestamp of the event being handled).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to `now`
    /// in release builds and panics in debug builds.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {at:?} < {:?}", self.now);
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time: at, seq, event }));
    }

    /// Schedule `event` after `delay`.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Number of pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }
}

/// Drives a [`World`] through simulated time.
pub struct Engine<W: World> {
    sched: Scheduler<W::Event>,
    events_processed: u64,
}

impl<W: World> Engine<W> {
    /// A fresh engine at t = 0 with an empty queue.
    pub fn new() -> Self {
        Engine {
            sched: Scheduler::new(),
            events_processed: 0,
        }
    }

    /// Access the scheduler, e.g. to seed initial events before running.
    pub fn scheduler(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total events handled so far (an engine-health metric used by benches).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Run until the queue is empty or simulated time would exceed `until`.
    ///
    /// Events with timestamp exactly `until` are **not** delivered, so
    /// consecutive `run_until` calls partition time into half-open intervals
    /// `[start, until)`. On return the clock rests at `until` (or at the last
    /// event time if the queue drained first).
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        while let Some(t) = self.sched.peek_time() {
            if t >= until {
                break;
            }
            let (time, event) = self.sched.pop().expect("peeked entry vanished");
            self.sched.now = time;
            self.events_processed += 1;
            world.handle(event, &mut self.sched);
        }
        if self.sched.now < until {
            self.sched.now = until;
        }
    }

    /// Run until the queue is empty.
    pub fn run_to_completion(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }

    /// Deliver exactly one event. Returns `false` if the queue was empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.sched.pop() {
            Some((time, event)) => {
                self.sched.now = time;
                self.events_processed += 1;
                world.handle(event, &mut self.sched);
                true
            }
            None => false,
        }
    }
}

impl<W: World> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records the order in which events arrive.
    struct Recorder {
        log: Vec<(SimTime, u32)>,
    }

    enum Ev {
        Tag(u32),
        /// Schedules `Tag(n)` `k` more times at 1 ms intervals.
        Repeat(u32, u32),
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
            match event {
                Ev::Tag(n) => self.log.push((sched.now(), n)),
                Ev::Repeat(n, k) => {
                    self.log.push((sched.now(), n));
                    if k > 0 {
                        sched.schedule_in(SimDuration::from_millis(1), Ev::Repeat(n, k - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler().schedule_at(SimTime::from_millis(30), Ev::Tag(3));
        eng.scheduler().schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        eng.scheduler().schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        let t = SimTime::from_millis(5);
        for n in 0..100 {
            eng.scheduler().schedule_at(t, Ev::Tag(n));
        }
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(tags, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_is_half_open() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler().schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        eng.scheduler().schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        eng.run_until(&mut w, SimTime::from_millis(20));
        assert_eq!(w.log.len(), 1);
        assert_eq!(eng.now(), SimTime::from_millis(20));
        // The boundary event is still pending and fires on the next window.
        eng.run_until(&mut w, SimTime::from_millis(21));
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler().schedule_at(SimTime::ZERO, Ev::Repeat(7, 4));
        eng.run_to_completion(&mut w);
        assert_eq!(w.log.len(), 5);
        assert_eq!(w.log.last().unwrap().0, SimTime::from_millis(4));
        assert_eq!(eng.events_processed(), 5);
    }

    #[test]
    fn step_returns_false_on_empty() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        assert!(!eng.step(&mut w));
        eng.scheduler().schedule_at(SimTime::ZERO, Ev::Tag(0));
        assert!(eng.step(&mut w));
        assert!(!eng.step(&mut w));
    }

    #[test]
    fn clock_advances_to_until_even_when_queue_drains() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.run_until(&mut w, SimTime::from_secs(5));
        assert_eq!(eng.now(), SimTime::from_secs(5));
    }

    #[test]
    fn peek_and_pending() {
        let mut eng: Engine<Recorder> = Engine::new();
        assert_eq!(eng.scheduler().peek_time(), None);
        assert_eq!(eng.scheduler().pending(), 0);
        eng.scheduler().schedule_at(SimTime::from_secs(1), Ev::Tag(1));
        eng.scheduler().schedule_at(SimTime::from_secs(2), Ev::Tag(2));
        assert_eq!(eng.scheduler().peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(eng.scheduler().pending(), 2);
    }
}
