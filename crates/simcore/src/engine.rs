//! The discrete-event engine: a time-ordered event queue and a run loop.
//!
//! The engine is generic over a [`World`] — the complete mutable state of a
//! simulation — and its associated event type. Components never hold
//! references to each other; they communicate by scheduling events, which the
//! engine delivers back to [`World::handle`] in timestamp order.
//!
//! # Determinism
//!
//! Two events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO), enforced by a monotonically increasing sequence
//! number used as a tie-breaker. Event ordering therefore never depends on
//! wheel internals, allocation order, or hashing.
//!
//! # Data layout (the hot path)
//!
//! Events are parked in a slab of [`Entry`]s (payload + timestamp + seq +
//! intrusive chain links, plus a free list); the ordering structures move
//! only fixed-size [`Key`]s — `(SimTime, seq, slot)`, 24 bytes regardless of
//! how large the event type is.
//!
//! The queue itself is a **hierarchical timing wheel** rather than a single
//! binary heap:
//!
//! * Time is bucketed into ticks of `2^TICK_SHIFT` ns (1.024 µs). Each wheel
//!   level has 64 slots covering 64x the span of the level below, so
//!   [`LEVELS`] levels span `64^LEVELS` ticks (~19.5 hours). A per-level
//!   `u64` occupancy bitmap makes "find the next non-empty slot" one
//!   `trailing_zeros` instruction.
//! * Scheduling an in-horizon event is O(1): compute the level from the
//!   highest differing bit between the event's tick and the wheel cursor,
//!   then chain the slab entry onto that slot's intrusive list, set the bit.
//!   Slots are bare `u32` chain heads (the whole wheel is 1.5 kB and stays
//!   L1-resident) and the chain links live in the slab entry that was just
//!   written — placement touches no cold memory. This is the layout Linux
//!   kernel timers use, for the same reason.
//! * Events beyond the horizon (including `SimTime::MAX` "armed but never
//!   firing" timers) go to a small overflow binary heap and are folded back
//!   into the wheel as the cursor approaches them.
//! * Keys whose tick has been reached move to a tiny *current heap* that
//!   yields exact `(time, seq)` order within the tick. In paper-scale runs
//!   this heap holds a handful of entries, so its sifts are trivial — the
//!   O(log n) cost of a single monolithic heap over every pending event is
//!   what this structure removes.
//!
//! Events scheduled at exactly the current instant (common: a network's
//! zero-delay loopback delivery) skip all of that and ride a FIFO
//! *fast lane*. The lane is drained in sequence order interleaved with
//! same-timestamp queued entries, so the FIFO-at-same-instant contract holds
//! across both paths: any queued entry with the current timestamp was
//! necessarily scheduled at an earlier instant (same-instant schedules go
//! to the lane) and thus carries a smaller sequence number.
//!
//! # Cancellation
//!
//! [`Scheduler::schedule_cancellable_at`] returns a [`TimerHandle`];
//! [`Scheduler::cancel`] removes the event in O(1). A wheel-chained timer is
//! unlinked from its slot's doubly-linked chain and its slab entry freed on
//! the spot (the dominant pattern — RTO timers re-armed on every ack — never
//! accumulates garbage). A timer whose key currently rides `cur` or the
//! overflow heap is tombstoned instead and reclaimed when the key surfaces;
//! its slab slot is not reused until then, so a key in those structures
//! always refers to its own entry.

use crate::time::{SimDuration, SimTime};
use crate::watchdog::{SimError, Watchdog};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// The complete mutable state of a simulation.
pub trait World {
    /// The event alphabet of this simulation.
    type Event;

    /// Handle one event. `sched.now()` is the event's timestamp; new events
    /// may be scheduled at or after that instant.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Granularity of one wheel tick: `2^16` ns ≈ 65.5 µs. Sub-tick timers ride
/// the current bucket, so precision is never lost — the tick only bounds how
/// much sorting the current bucket does (at paper-scale event density it
/// holds ~1 entry). Chosen empirically: finer ticks make every ms-scale
/// propagation delay cascade through an extra level (cascade `place` calls
/// dominated the profile at `2^10`); coarser ticks push the sorting work
/// into the current bucket and stop paying off past ~`2^16`.
const TICK_SHIFT: u32 = 16;
/// log2 of slots per level.
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels. `64^6` ticks x 65.5 µs/tick ≈ 52 days of horizon; anything
/// further out (notably `SimTime::MAX` sentinels) waits in the overflow heap.
const LEVELS: usize = 6;

#[inline]
const fn tick_of(t: SimTime) -> u64 {
    t.as_nanos() >> TICK_SHIFT
}

/// Fixed-size queue entry: total order by `(time, seq)`; `slot` locates the
/// event in the slab and never participates in ordering.
#[derive(Clone, Copy)]
struct Key {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Chain-link sentinel: no next/prev entry, or an empty slot head.
const NIL: u32 = u32::MAX;
/// `Entry::bucket` value while the entry's key rides `cur` or the overflow
/// heap (no wheel chain to unlink from).
const NOT_CHAINED: u32 = u32::MAX;
/// `Entry::bucket` value for a vacated slab slot (on the free list).
const FREE: u32 = u32::MAX - 1;

/// One slab slot: the event payload plus everything the wheel needs to
/// chain, identify, and re-file it. Keys carry `(time, seq)` too, purely so
/// `cur`/overflow ordering never touches the slab.
struct Entry<E> {
    seq: u64,
    time: SimTime,
    /// Next entry in this wheel slot's chain (`NIL` at the tail).
    next: u32,
    /// Previous entry in the chain (`NIL` at the head) — makes `cancel` an
    /// O(1) unlink instead of a lazy tombstone.
    prev: u32,
    /// Wheel bucket (`level * SLOTS + slot`) this entry is chained in, or
    /// [`NOT_CHAINED`] / [`FREE`].
    bucket: u32,
    /// `None` = tombstone: cancelled while riding `cur`/overflow, reclaimed
    /// when the key surfaces.
    event: Option<E>,
}

/// Handle returned by [`Scheduler::schedule_cancellable_at`]; pass to
/// [`Scheduler::cancel`]. Stale handles (already fired or cancelled) are
/// detected by sequence-number mismatch and rejected safely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerHandle {
    slot: u32,
    seq: u64,
}

/// Where scheduled events landed and how the slab behaved — the scheduler's
/// occupancy counters, surfaced per run so fleet-scale memory flatness and
/// wheel-vs-overflow hit rates are observable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events that rode the same-instant fast lane.
    pub lane_scheduled: u64,
    /// Events that went straight to the current heap (sub-tick horizon).
    pub cur_scheduled: u64,
    /// Events placed into a wheel slot (the O(1) fast path).
    pub wheel_scheduled: u64,
    /// Events beyond the wheel horizon, parked in the overflow heap.
    pub overflow_scheduled: u64,
    /// Keys moved during cascades (slot redistribution as the cursor jumps).
    pub cascaded: u64,
    /// Timers removed via [`Scheduler::cancel`].
    pub cancelled: u64,
    /// Largest slab size (slots) reached during the run.
    pub slab_high_watermark: u64,
}

/// The event queue. Handed to [`World::handle`] so handlers can schedule
/// follow-up events.
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    /// Wheel cursor, in ticks. Every key in the wheel has `tick > cur_tick`
    /// and sits at the level of the highest differing 6-bit digit between
    /// its tick and `cur_tick`; everything at or before `cur_tick` has been
    /// moved to `cur`.
    cur_tick: u64,
    /// Keys whose tick has been reached (plus same-instant cancellable
    /// schedules), sorted descending so the minimum pops from the end.
    /// Tiny in practice (~1 entry at paper-scale density), which makes a
    /// sorted vec strictly cheaper than a heap: push is usually an append,
    /// pop is `Vec::pop`, peek is `last()`.
    cur: Vec<Key>,
    /// `LEVELS x SLOTS` wheel slots, flattened: each is the head of an
    /// intrusive chain through the slab (`NIL` = empty).
    heads: Vec<u32>,
    /// Per-level occupancy bitmap: bit `s` set iff the chain at
    /// `heads[level*SLOTS+s]` is non-empty.
    occupied: [u64; LEVELS],
    /// Keys beyond the wheel horizon, ordered by `(time, seq)`.
    overflow: BinaryHeap<Reverse<Key>>,
    /// Slab backing the queue: keys and chains index into here. Free slots
    /// are marked [`FREE`] and listed in `free`; trailing free entries are
    /// truncated so bursts don't pin memory.
    slab: Vec<Entry<E>>,
    free: Vec<u32>,
    /// Live (not cancelled) slab entries; `pending()` = this + lane length.
    live: usize,
    /// Fast lane for events scheduled at exactly `now`; entries are
    /// `(seq, event)` and their timestamp is implicitly `now`.
    lane: VecDeque<(u64, E)>,
    /// Number of `schedule_at` calls that targeted the past (see the
    /// [`Scheduler::schedule_at`] contract).
    past_schedules: u64,
    stats: SchedStats,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            cur_tick: 0,
            cur: Vec::new(),
            heads: vec![NIL; LEVELS * SLOTS],
            occupied: [0; LEVELS],
            overflow: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            live: 0,
            lane: VecDeque::new(),
            past_schedules: 0,
            stats: SchedStats::default(),
        }
    }

    /// Current simulated time (the timestamp of the event being handled).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Occupancy counters for this run.
    #[inline]
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Current slab size in slots (shrinks after bursts; the peak is
    /// [`SchedStats::slab_high_watermark`]).
    #[inline]
    pub fn slab_len(&self) -> usize {
        self.slab.len()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Contract
    ///
    /// Scheduling into the past is a logic error in the caller, but it is
    /// handled identically in debug and release builds: the event is
    /// clamped to `now` (so it still fires, in FIFO order with other events
    /// at `now`) and the occurrence is counted in
    /// [`Scheduler::past_schedules`]. Harnesses surface that count per run
    /// (e.g. as the `past_clamps` telemetry counter) rather than writing
    /// to stderr, which would interleave across parallel workers.
    /// Deterministic outputs are never affected by the build profile.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = if at < self.now {
            self.past_schedules += 1;
            self.now
        } else {
            at
        };
        let seq = self.seq;
        self.seq += 1;
        if at == self.now {
            // Fast lane: no wheel traffic for same-instant delivery.
            self.stats.lane_scheduled += 1;
            self.lane.push_back((seq, event));
            return;
        }
        let slot = self.alloc_slot(seq, at, event);
        self.live += 1;
        self.place_counted(Key {
            time: at,
            seq,
            slot,
        });
    }

    /// Schedule `event` after `delay`.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        if delay.is_zero() {
            self.schedule_now(event);
        } else {
            self.schedule_at(self.now + delay, event);
        }
    }

    /// Schedule `event` at exactly the current instant. It fires after all
    /// already-scheduled events at `now` (FIFO), without touching the wheel.
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.stats.lane_scheduled += 1;
        self.lane.push_back((seq, event));
    }

    /// Like [`Scheduler::schedule_at`], but returns a [`TimerHandle`] that
    /// can later be passed to [`Scheduler::cancel`]. Past timestamps clamp
    /// to `now` under the same contract as `schedule_at`. Cancellable
    /// same-instant events keep their FIFO position relative to other
    /// schedules (they order by sequence number like everything else).
    pub fn schedule_cancellable_at(&mut self, at: SimTime, event: E) -> TimerHandle {
        let at = if at < self.now {
            self.past_schedules += 1;
            self.now
        } else {
            at
        };
        let seq = self.seq;
        self.seq += 1;
        let slot = self.alloc_slot(seq, at, event);
        self.live += 1;
        let key = Key {
            time: at,
            seq,
            slot,
        };
        if at == self.now {
            // Must stay poppable this instant: the lane is append-only FIFO
            // and cannot host a removable entry, so ride the current bucket.
            // `time == now` is ≤ every other pending event, so the bucket
            // invariant (cur minimum ≤ wheel minimum) is preserved.
            self.stats.cur_scheduled += 1;
            Self::cur_push(&mut self.cur, key);
        } else {
            self.place_counted(key);
        }
        TimerHandle { slot, seq }
    }

    /// Cancellable version of [`Scheduler::schedule_in`].
    #[inline]
    pub fn schedule_cancellable_in(&mut self, delay: SimDuration, event: E) -> TimerHandle {
        self.schedule_cancellable_at(self.now + delay, event)
    }

    /// Cancel a pending timer, returning its event. Returns `None` if the
    /// timer already fired or was already cancelled. O(1): a wheel-chained
    /// timer is unlinked and its slot freed immediately; one riding
    /// `cur`/overflow is tombstoned and reclaimed when its key surfaces.
    pub fn cancel(&mut self, handle: TimerHandle) -> Option<E> {
        let entry = self.slab.get_mut(handle.slot as usize)?;
        if entry.seq != handle.seq || entry.event.is_none() {
            return None; // already fired, cancelled, or slot recycled
        }
        let event = entry.event.take().unwrap();
        let bucket = entry.bucket;
        self.live -= 1;
        self.stats.cancelled += 1;
        if bucket != NOT_CHAINED {
            self.unlink(handle.slot, bucket);
            self.release_slot(handle.slot);
        }
        Some(event)
    }

    /// Number of pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.lane.len() + self.live
    }

    /// How many times an event was scheduled into the past (and clamped to
    /// `now`). Zero in a well-behaved simulation; exposed so harnesses can
    /// assert on it.
    #[inline]
    pub fn past_schedules(&self) -> u64 {
        self.past_schedules
    }

    /// Timestamp of the next pending event, if any. Takes `&mut self`
    /// because peeking may advance the wheel cursor and discard cancelled
    /// keys; the answer is exact (never a bucket approximation).
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.prepare() {
            return None;
        }
        // Lane entries are at `now`, which never exceeds any queued entry's
        // timestamp, so a non-empty lane decides.
        if !self.lane.is_empty() {
            return Some(self.now);
        }
        self.cur.last().map(|k| k.time)
    }

    /// Remove and return the next event in `(time, seq)` order.
    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_next_before(None)
    }

    /// Fused peek+pop: remove and return the next event in `(time, seq)`
    /// order, or `None` (leaving it pending) if its timestamp is at or past
    /// `until`. One `prepare` serves both the bound check and the pop —
    /// this is the engine's per-event fast path.
    fn pop_next_before(&mut self, until: Option<SimTime>) -> Option<(SimTime, E)> {
        if !self.prepare() {
            return None;
        }
        let from_lane = match (self.lane.front(), self.cur.last()) {
            (Some(&(lane_seq, _)), Some(k)) => {
                // Same-timestamp queued entries were scheduled at an earlier
                // instant and carry smaller seqs; later queued entries lose
                // on time. The comparison keeps ordering airtight even so.
                k.time > self.now || k.seq > lane_seq
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("prepare() returned true on empty queue"),
        };
        if from_lane {
            if until.is_some_and(|u| self.now >= u) {
                return None;
            }
            let (_, event) = self.lane.pop_front().expect("lane front vanished");
            Some((self.now, event))
        } else {
            let k = *self.cur.last().expect("cur minimum vanished");
            if until.is_some_and(|u| k.time >= u) {
                return None;
            }
            self.cur.pop();
            let event = self.slab[k.slot as usize]
                .event
                .take()
                .expect("slab slot empty");
            self.live -= 1;
            self.release_slot(k.slot);
            Some((k.time, event))
        }
    }

    /// Ensure the earliest *non-lane* pending event is live at the end of
    /// `cur` (the lane cannot be short-circuited: a wheel entry may share
    /// `time == now` with a larger-seq lane entry and must fire first).
    /// Returns `false` iff nothing at all is pending.
    fn prepare(&mut self) -> bool {
        loop {
            // Reclaim tombstones (cancelled while riding `cur`) as they
            // surface. A key in `cur` always references its own entry — the
            // slot cannot have been recycled while the key was live here.
            while let Some(k) = self.cur.last() {
                let entry = &self.slab[k.slot as usize];
                debug_assert_eq!(entry.seq, k.seq, "cur key references recycled slot");
                if entry.event.is_some() {
                    break;
                }
                let slot = k.slot;
                self.cur.pop();
                self.release_slot(slot);
            }
            if !self.cur.is_empty() {
                return true;
            }
            if !self.advance() {
                return !self.lane.is_empty();
            }
        }
    }

    /// Jump the wheel cursor to the earliest pending tick and move that
    /// tick's keys into `cur`. Returns `false` iff wheel and overflow are
    /// both empty. May deposit cancelled keys into `cur`; `prepare` filters.
    fn advance(&mut self) -> bool {
        loop {
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                // Wheel empty: jump straight to the overflow's earliest tick
                // and collect every overflow key sharing it.
                let Some(&Reverse(first)) = self.overflow.peek() else {
                    return false;
                };
                let t = tick_of(first.time);
                self.cur_tick = t;
                while let Some(&Reverse(k)) = self.overflow.peek() {
                    if tick_of(k.time) != t {
                        break;
                    }
                    let Reverse(k) = self.overflow.pop().unwrap();
                    if self.slab[k.slot as usize].event.is_none() {
                        // Tombstone (cancelled while in overflow): reclaim.
                        self.release_slot(k.slot);
                    } else {
                        Self::cur_push(&mut self.cur, k);
                    }
                }
                return true;
            };
            let shift = level as u32 * LEVEL_BITS;
            let pos = ((self.cur_tick >> shift) & (SLOTS as u64 - 1)) as u32;
            let rel = self.occupied[level] >> pos;
            // The cursor's own slot is empty at every level (a key there
            // would have tick == cur_tick's digit, i.e. a lower level).
            debug_assert!(rel & 1 == 0, "key parked at the wheel cursor");
            let slot = pos + rel.trailing_zeros();
            // Base tick of that slot: cursor digits above `level`, `slot` at
            // `level`, zero below.
            let base = (self.cur_tick & !(((1u64) << (shift + LEVEL_BITS)) - 1))
                | ((slot as u64) << shift);
            // An overflow key may precede the wheel's candidate when the
            // cursor has moved close enough for it to fit in the horizon;
            // fold it in first and re-run the search.
            if let Some(&Reverse(k)) = self.overflow.peek() {
                if tick_of(k.time) <= base {
                    let Reverse(k) = self.overflow.pop().unwrap();
                    if self.slab[k.slot as usize].event.is_none() {
                        self.release_slot(k.slot); // tombstone
                    } else {
                        self.place(k);
                    }
                    continue;
                }
            }
            self.occupied[level] &= !(1u64 << slot);
            self.cur_tick = base;
            let idx = level * SLOTS + slot as usize;
            // Walk the chain. Every chained entry is live (cancel unlinks
            // wheel entries eagerly), and `place`/`cur_push` rewrite the
            // links, so the successor is read before re-filing each node.
            let mut s = self.heads[idx];
            self.heads[idx] = NIL;
            if level == 0 {
                // Every entry in a level-0 slot shares the slot's exact tick.
                while s != NIL {
                    let e = &mut self.slab[s as usize];
                    let nxt = e.next;
                    e.bucket = NOT_CHAINED;
                    let k = Key {
                        time: e.time,
                        seq: e.seq,
                        slot: s,
                    };
                    Self::cur_push(&mut self.cur, k);
                    s = nxt;
                }
                return true;
            }
            // Cascade: redistribute the chain to lower levels (or to `cur`
            // for entries landing exactly on the new cursor tick).
            while s != NIL {
                let e = &self.slab[s as usize];
                let nxt = e.next;
                let k = Key {
                    time: e.time,
                    seq: e.seq,
                    slot: s,
                };
                self.place(k);
                self.stats.cascaded += 1;
                s = nxt;
            }
            if !self.cur.is_empty() {
                return true;
            }
        }
    }

    /// Insert into the descending-sorted `cur` bucket. New keys are usually
    /// the new minimum (appended); ties and stragglers binary-search.
    #[inline]
    fn cur_push(cur: &mut Vec<Key>, k: Key) {
        match cur.last() {
            Some(&last) if k > last => {
                let idx = cur.partition_point(|x| *x > k);
                cur.insert(idx, k);
            }
            _ => cur.push(k),
        }
    }

    /// File a key by its tick relative to the cursor: reached ticks go to
    /// `cur`, in-horizon ticks onto the chain of the level of the highest
    /// differing digit, the rest to overflow.
    #[inline]
    fn place(&mut self, k: Key) -> Placed {
        let t = tick_of(k.time);
        if t <= self.cur_tick {
            self.slab[k.slot as usize].bucket = NOT_CHAINED;
            Self::cur_push(&mut self.cur, k);
            return Placed::Cur;
        }
        let diff = t ^ self.cur_tick;
        let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
        if level >= LEVELS {
            self.slab[k.slot as usize].bucket = NOT_CHAINED;
            self.overflow.push(Reverse(k));
            return Placed::Overflow;
        }
        let slot = ((t >> (level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1)) as usize;
        let idx = level * SLOTS + slot;
        let head = self.heads[idx];
        let e = &mut self.slab[k.slot as usize];
        e.next = head;
        e.prev = NIL;
        e.bucket = idx as u32;
        if head != NIL {
            self.slab[head as usize].prev = k.slot;
        }
        self.heads[idx] = k.slot;
        self.occupied[level] |= 1u64 << slot;
        Placed::Wheel
    }

    /// Remove a wheel-chained entry from its slot chain in O(1), clearing
    /// the occupancy bit when the chain empties.
    fn unlink(&mut self, slot: u32, bucket: u32) {
        let (prev, next) = {
            let e = &self.slab[slot as usize];
            (e.prev, e.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else {
            self.heads[bucket as usize] = next;
            if next == NIL {
                let level = bucket as usize / SLOTS;
                self.occupied[level] &= !(1u64 << (bucket as usize % SLOTS));
            }
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        }
    }

    #[inline]
    fn place_counted(&mut self, k: Key) {
        match self.place(k) {
            Placed::Cur => self.stats.cur_scheduled += 1,
            Placed::Wheel => self.stats.wheel_scheduled += 1,
            Placed::Overflow => self.stats.overflow_scheduled += 1,
        }
    }

    fn alloc_slot(&mut self, seq: u64, time: SimTime, event: E) -> u32 {
        let entry = Entry {
            seq,
            time,
            next: NIL,
            prev: NIL,
            bucket: NOT_CHAINED,
            event: Some(event),
        };
        while let Some(s) = self.free.pop() {
            // Truncation may have orphaned free-list entries; `release_slot`
            // purges them, so this guard is belt-and-braces.
            if (s as usize) < self.slab.len() {
                debug_assert_eq!(self.slab[s as usize].bucket, FREE);
                self.slab[s as usize] = entry;
                return s;
            }
        }
        let s = self.slab.len() as u32;
        self.slab.push(entry);
        if self.slab.len() as u64 > self.stats.slab_high_watermark {
            self.stats.slab_high_watermark = self.slab.len() as u64;
        }
        s
    }

    /// Return a slab slot to the pool. When the slab is large and mostly
    /// dead (a drained burst), the trailing `None` run is truncated so the
    /// peak size is not pinned forever; free-list indices past the new
    /// length are purged (they would otherwise alias re-grown slots). The
    /// occupancy gate keeps compaction off the steady-state hot path.
    fn release_slot(&mut self, slot: u32) {
        self.slab[slot as usize].bucket = FREE;
        self.free.push(slot);
        if self.slab.len() >= 64
            && self.live * 2 <= self.slab.len()
            && self.slab.last().is_some_and(|e| e.bucket == FREE)
        {
            while self.slab.last().is_some_and(|e| e.bucket == FREE) {
                self.slab.pop();
            }
            let len = self.slab.len();
            self.free.retain(|&s| (s as usize) < len);
        }
    }
}

enum Placed {
    Cur,
    Wheel,
    Overflow,
}

/// Drives a [`World`] through simulated time.
pub struct Engine<W: World> {
    sched: Scheduler<W::Event>,
    events_processed: u64,
}

impl<W: World> Engine<W> {
    /// A fresh engine at t = 0 with an empty queue.
    pub fn new() -> Self {
        Engine {
            sched: Scheduler::new(),
            events_processed: 0,
        }
    }

    /// Access the scheduler, e.g. to seed initial events before running.
    pub fn scheduler(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total events handled so far (an engine-health metric used by benches).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Read-only view of [`Scheduler::past_schedules`], so harnesses can
    /// report past-timestamp clamps without mutable scheduler access.
    pub fn past_schedules(&self) -> u64 {
        self.sched.past_schedules
    }

    /// Scheduler occupancy counters (see [`SchedStats`]).
    pub fn sched_stats(&self) -> SchedStats {
        self.sched.stats
    }

    /// Run until the queue is empty or simulated time would exceed `until`.
    ///
    /// Events with timestamp exactly `until` are **not** delivered, so
    /// consecutive `run_until` calls partition time into half-open intervals
    /// `[start, until)`. On return the clock rests at `until` (or at the last
    /// event time if the queue drained first).
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        while let Some((time, event)) = self.sched.pop_next_before(Some(until)) {
            self.sched.now = time;
            self.events_processed += 1;
            world.handle(event, &mut self.sched);
        }
        if self.sched.now < until {
            self.sched.now = until;
        }
    }

    /// [`Self::run_until`] under a [`Watchdog`]: aborts gracefully into a
    /// structured [`SimError`] if the run exceeds its event budget or
    /// delivers `livelock_window` consecutive events without simulated
    /// time advancing. For any run that stays inside the budgets this is
    /// bit-identical to the unguarded loop — the guards only read
    /// counters the engine already maintains.
    ///
    /// Budgets are counted per call, so segmented driving
    /// (`run_until_guarded(.., t1)` then `(.., t2)`) grants each segment
    /// a fresh budget. On abort the clock rests at the offending event's
    /// timestamp and the remaining queue is left in place; the simulation
    /// should be considered abandoned (the aborted event is discarded).
    pub fn run_until_guarded(
        &mut self,
        world: &mut W,
        until: SimTime,
        dog: &Watchdog,
    ) -> Result<(), SimError> {
        let start = self.events_processed;
        let mut stuck: u64 = 0;
        while let Some((time, event)) = self.sched.pop_next_before(Some(until)) {
            if self.events_processed - start >= dog.event_budget {
                self.sched.now = time;
                return Err(SimError::EventBudgetExceeded {
                    budget: dog.event_budget,
                    at: time,
                });
            }
            if time > self.sched.now {
                stuck = 0;
            } else {
                stuck += 1;
                if stuck >= dog.livelock_window {
                    self.sched.now = time;
                    return Err(SimError::Livelock {
                        window: dog.livelock_window,
                        at: time,
                    });
                }
            }
            self.sched.now = time;
            self.events_processed += 1;
            world.handle(event, &mut self.sched);
        }
        if self.sched.now < until {
            self.sched.now = until;
        }
        Ok(())
    }

    /// Run until the queue is empty.
    pub fn run_to_completion(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }

    /// Deliver exactly one event. Returns `false` if the queue was empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.sched.pop() {
            Some((time, event)) => {
                self.sched.now = time;
                self.events_processed += 1;
                world.handle(event, &mut self.sched);
                true
            }
            None => false,
        }
    }
}

impl<W: World> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records the order in which events arrive.
    struct Recorder {
        log: Vec<(SimTime, u32)>,
    }

    enum Ev {
        Tag(u32),
        /// Schedules `Tag(n)` `k` more times at 1 ms intervals.
        Repeat(u32, u32),
        /// Schedules `Tag(n)` at the current instant (fast lane), then
        /// `Tag(n + 1)` 1 ms out (wheel).
        NowAndLater(u32),
        /// Reschedules itself at the current instant forever (livelock).
        Spin,
        /// Reschedules itself 1 ns out forever (event storm).
        Storm,
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
            match event {
                Ev::Tag(n) => self.log.push((sched.now(), n)),
                Ev::Repeat(n, k) => {
                    self.log.push((sched.now(), n));
                    if k > 0 {
                        sched.schedule_in(SimDuration::from_millis(1), Ev::Repeat(n, k - 1));
                    }
                }
                Ev::NowAndLater(n) => {
                    self.log.push((sched.now(), n));
                    sched.schedule_now(Ev::Tag(n));
                    sched.schedule_in(SimDuration::from_millis(1), Ev::Tag(n + 1));
                }
                Ev::Spin => {
                    sched.schedule_now(Ev::Spin);
                }
                Ev::Storm => {
                    sched.schedule_in(SimDuration::from_nanos(1), Ev::Storm);
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler()
            .schedule_at(SimTime::from_millis(30), Ev::Tag(3));
        eng.scheduler()
            .schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        eng.scheduler()
            .schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        let t = SimTime::from_millis(5);
        for n in 0..100 {
            eng.scheduler().schedule_at(t, Ev::Tag(n));
        }
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(tags, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fast_lane_interleaves_fifo_with_heap_entries() {
        // Queued entries at the same timestamp (scheduled earlier) must fire
        // before lane entries (scheduled during that instant's handling).
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        let t = SimTime::from_millis(5);
        eng.scheduler().schedule_at(t, Ev::NowAndLater(10)); // fires first at t
        eng.scheduler().schedule_at(t, Ev::Tag(20)); // queued peer at t
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        // NowAndLater(10) logs 10, schedules Tag(10) in the lane; Tag(20)
        // (seq 1, scheduled before Tag(10)) must still fire before it.
        assert_eq!(tags, vec![10, 20, 10, 11]);
    }

    #[test]
    fn schedule_now_is_fifo_within_the_lane() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        for n in 0..50 {
            eng.scheduler().schedule_now(Ev::Tag(n));
        }
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(tags, (0..50).collect::<Vec<_>>());
        // All lane traffic: the wheel was never touched.
        let stats = eng.scheduler().stats();
        assert_eq!(stats.lane_scheduled, 50);
        assert_eq!(
            stats.cur_scheduled + stats.wheel_scheduled + stats.overflow_scheduled,
            0
        );
    }

    #[test]
    fn run_until_is_half_open() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler()
            .schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        eng.scheduler()
            .schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        eng.run_until(&mut w, SimTime::from_millis(20));
        assert_eq!(w.log.len(), 1);
        assert_eq!(eng.now(), SimTime::from_millis(20));
        // The boundary event is still pending and fires on the next window.
        eng.run_until(&mut w, SimTime::from_millis(21));
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn lane_events_at_the_boundary_stay_pending() {
        // Events in the fast lane at t = until must not fire (half-open
        // window) and must survive into the next window.
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler().schedule_now(Ev::Tag(7)); // lane entry at t = 0
        eng.run_until(&mut w, SimTime::ZERO);
        assert!(w.log.is_empty(), "boundary event fired early");
        eng.run_until(&mut w, SimTime::from_millis(1));
        assert_eq!(w.log.len(), 1);
        assert_eq!(w.log[0], (SimTime::ZERO, 7));
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler().schedule_at(SimTime::ZERO, Ev::Repeat(7, 4));
        eng.run_to_completion(&mut w);
        assert_eq!(w.log.len(), 5);
        assert_eq!(w.log.last().unwrap().0, SimTime::from_millis(4));
        assert_eq!(eng.events_processed(), 5);
    }

    #[test]
    fn step_returns_false_on_empty() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        assert!(!eng.step(&mut w));
        eng.scheduler().schedule_at(SimTime::ZERO, Ev::Tag(0));
        assert!(eng.step(&mut w));
        assert!(!eng.step(&mut w));
    }

    #[test]
    fn clock_advances_to_until_even_when_queue_drains() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.run_until(&mut w, SimTime::from_secs(5));
        assert_eq!(eng.now(), SimTime::from_secs(5));
    }

    #[test]
    fn peek_and_pending() {
        let mut eng: Engine<Recorder> = Engine::new();
        assert_eq!(eng.scheduler().peek_time(), None);
        assert_eq!(eng.scheduler().pending(), 0);
        eng.scheduler()
            .schedule_at(SimTime::from_secs(1), Ev::Tag(1));
        eng.scheduler()
            .schedule_at(SimTime::from_secs(2), Ev::Tag(2));
        assert_eq!(eng.scheduler().peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(eng.scheduler().pending(), 2);
    }

    #[test]
    fn past_scheduling_clamps_identically_in_all_builds() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler()
            .schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        eng.run_until(&mut w, SimTime::from_millis(20));
        // now == 20 ms; scheduling at 5 ms is a caller bug: clamped + counted.
        eng.scheduler()
            .schedule_at(SimTime::from_millis(5), Ev::Tag(2));
        assert_eq!(eng.scheduler().past_schedules(), 1);
        eng.run_until(&mut w, SimTime::from_millis(30));
        assert_eq!(w.log.len(), 2);
        // The clamped event fired at the clock's position, not in the past.
        assert_eq!(w.log[1].0, SimTime::from_millis(20));
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        // Schedule/deliver many future events one at a time: the slab must
        // stay at one slot, not grow with every event.
        for i in 0..1000u64 {
            eng.scheduler()
                .schedule_at(SimTime::from_millis(i + 1), Ev::Tag(i as u32));
            eng.run_until(&mut w, SimTime::from_millis(i + 2));
        }
        assert_eq!(w.log.len(), 1000);
        assert!(
            eng.scheduler().slab_len() <= 2,
            "slab grew to {} slots for serial traffic",
            eng.scheduler().slab_len()
        );
    }

    #[test]
    fn slab_shrinks_after_a_burst() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        // A 10k-event burst inflates the slab; after delivery it must
        // contract instead of pinning the peak forever.
        for i in 0..10_000u64 {
            eng.scheduler()
                .schedule_at(SimTime::from_millis(1 + i), Ev::Tag(i as u32));
        }
        eng.run_to_completion(&mut w);
        assert_eq!(w.log.len(), 10_000);
        assert_eq!(eng.sched_stats().slab_high_watermark, 10_000);
        assert!(
            eng.scheduler().slab_len() <= 2,
            "slab stayed at {} slots after the burst drained",
            eng.scheduler().slab_len()
        );
        // Post-burst traffic reuses low slots without re-inflating.
        for i in 0..100u64 {
            eng.scheduler()
                .schedule_at(SimTime::from_secs(20 + i), Ev::Tag(i as u32));
            eng.run_until(&mut w, SimTime::from_secs(21 + i));
        }
        assert!(eng.scheduler().slab_len() <= 2);
    }

    #[test]
    fn far_future_events_ride_the_overflow_heap() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        // Beyond the ~52-day wheel horizon (2^52 ns ≈ 4.5e6 s).
        eng.scheduler()
            .schedule_at(SimTime::from_secs(5_000_000), Ev::Tag(2));
        eng.scheduler()
            .schedule_at(SimTime::from_secs(10_000_000), Ev::Tag(3));
        eng.scheduler()
            .schedule_at(SimTime::from_secs(1), Ev::Tag(1));
        let stats = eng.scheduler().stats();
        assert_eq!(stats.overflow_scheduled, 2);
        assert_eq!(stats.wheel_scheduled, 1);
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(w.log[2].0, SimTime::from_secs(10_000_000));
    }

    #[test]
    fn max_timers_park_without_firing_before_real_events() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler().schedule_at(SimTime::MAX, Ev::Tag(99));
        eng.scheduler()
            .schedule_at(SimTime::from_millis(1), Ev::Tag(1));
        eng.run_until(&mut w, SimTime::from_secs(1));
        assert_eq!(w.log.len(), 1);
        assert_eq!(eng.scheduler().pending(), 1); // the MAX sentinel waits
    }

    #[test]
    fn cancel_removes_a_pending_timer() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        let h = eng
            .scheduler()
            .schedule_cancellable_at(SimTime::from_millis(10), Ev::Tag(1));
        eng.scheduler()
            .schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        assert_eq!(eng.scheduler().pending(), 2);
        assert!(matches!(eng.scheduler().cancel(h), Some(Ev::Tag(1))));
        assert_eq!(eng.scheduler().pending(), 1);
        // Double-cancel is a safe no-op.
        assert!(eng.scheduler().cancel(h).is_none());
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(tags, vec![2]);
        assert_eq!(eng.sched_stats().cancelled, 1);
    }

    #[test]
    fn stale_handle_does_not_cancel_a_recycled_slot() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        let h = eng
            .scheduler()
            .schedule_cancellable_at(SimTime::from_millis(1), Ev::Tag(1));
        eng.run_until(&mut w, SimTime::from_millis(5)); // fires; slot freed
                                                        // A new timer re-uses the slot; the old handle must not kill it.
        let _h2 = eng
            .scheduler()
            .schedule_cancellable_at(SimTime::from_millis(10), Ev::Tag(2));
        assert!(eng.scheduler().cancel(h).is_none());
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(tags, vec![1, 2]);
    }

    #[test]
    fn cancellable_same_instant_keeps_fifo_order() {
        // A cancellable event scheduled at `now` rides the current heap, not
        // the lane — its seq must still interleave FIFO with lane entries.
        struct W2 {
            log: Vec<u32>,
        }
        impl World for W2 {
            type Event = u32;
            fn handle(&mut self, event: u32, sched: &mut Scheduler<u32>) {
                self.log.push(event);
                if event == 1 {
                    let _ = sched.schedule_cancellable_at(sched.now(), 2); // seq before 3
                    sched.schedule_now(3);
                }
            }
        }
        let mut w = W2 { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler().schedule_at(SimTime::from_millis(1), 1u32);
        eng.run_to_completion(&mut w);
        assert_eq!(w.log, vec![1, 2, 3]);
    }

    #[test]
    fn wheel_preserves_order_across_tick_boundaries() {
        // Sub-tick spacing (a tick is 1.024 µs): events landing in the same
        // tick and adjacent ticks must still deliver in exact time order.
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        let times = [
            1u64, 1023, 1024, 1025, 2047, 2048, 5000, 100_000, 1_000_000, 1_000_001,
        ];
        // Schedule in reverse to rule out insertion-order luck.
        for (i, &ns) in times.iter().enumerate().rev() {
            eng.scheduler()
                .schedule_at(SimTime::from_nanos(ns), Ev::Tag(i as u32));
        }
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(tags, (0..times.len() as u32).collect::<Vec<_>>());
        for (i, &ns) in times.iter().enumerate() {
            assert_eq!(w.log[i].0, SimTime::from_nanos(ns));
        }
    }

    #[test]
    fn guarded_run_is_bit_identical_to_unguarded_when_within_budget() {
        let schedule = |eng: &mut Engine<Recorder>| {
            eng.scheduler()
                .schedule_at(SimTime::from_millis(1), Ev::Repeat(7, 20));
            eng.scheduler()
                .schedule_at(SimTime::from_millis(3), Ev::NowAndLater(40));
        };
        let mut w1 = Recorder { log: vec![] };
        let mut e1 = Engine::new();
        schedule(&mut e1);
        e1.run_until(&mut w1, SimTime::from_millis(50));

        let mut w2 = Recorder { log: vec![] };
        let mut e2 = Engine::new();
        schedule(&mut e2);
        e2.run_until_guarded(&mut w2, SimTime::from_millis(50), &Watchdog::default())
            .expect("well-behaved run must pass the watchdog");

        assert_eq!(w1.log, w2.log);
        assert_eq!(e1.events_processed(), e2.events_processed());
        assert_eq!(e1.now(), e2.now());
    }

    #[test]
    fn watchdog_aborts_same_instant_livelock() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler()
            .schedule_at(SimTime::from_millis(2), Ev::Spin);
        let dog = Watchdog::new(1_000_000, 500);
        let err = eng
            .run_until_guarded(&mut w, SimTime::from_secs(1), &dog)
            .expect_err("self-rescheduling event must trip the livelock guard");
        assert_eq!(
            err,
            SimError::Livelock {
                window: 500,
                at: SimTime::from_millis(2)
            }
        );
        // Abandoned well before the event budget: the livelock fired first.
        assert!(eng.events_processed() <= 501);
    }

    #[test]
    fn watchdog_aborts_event_storm_on_budget() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler().schedule_now(Ev::Storm);
        let dog = Watchdog::new(1_000, 1_000_000);
        let err = eng
            .run_until_guarded(&mut w, SimTime::from_secs(1), &dog)
            .expect_err("1 ns storm must exhaust the event budget");
        match err {
            SimError::EventBudgetExceeded { budget, .. } => assert_eq!(budget, 1_000),
            other => panic!("expected budget abort, got {other:?}"),
        }
        assert_eq!(eng.events_processed(), 1_000);
    }

    #[test]
    fn watchdog_budget_is_per_call_not_per_engine() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        for i in 0..10u32 {
            eng.scheduler()
                .schedule_at(SimTime::from_millis(i as u64 + 1), Ev::Tag(i));
        }
        let dog = Watchdog::new(6, 1_000);
        // Two segments of ≤6 events each pass, though 10 > 6 in total.
        eng.run_until_guarded(&mut w, SimTime::from_millis(6), &dog)
            .expect("first segment fits its budget");
        eng.run_until_guarded(&mut w, SimTime::from_millis(20), &dog)
            .expect("second segment gets a fresh budget");
        assert_eq!(eng.events_processed(), 10);
    }
}
