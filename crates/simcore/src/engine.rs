//! The discrete-event engine: a time-ordered event queue and a run loop.
//!
//! The engine is generic over a [`World`] — the complete mutable state of a
//! simulation — and its associated event type. Components never hold
//! references to each other; they communicate by scheduling events, which the
//! engine delivers back to [`World::handle`] in timestamp order.
//!
//! # Determinism
//!
//! Two events scheduled for the same instant are delivered in the order they
//! were scheduled (FIFO), enforced by a monotonically increasing sequence
//! number used as a tie-breaker. Event ordering therefore never depends on
//! heap internals, allocation order, or hashing.
//!
//! # Data layout (the hot path)
//!
//! Events are parked in a slab (`Vec<Option<E>>` plus a free list) and the
//! binary heap orders only fixed-size [`Key`]s — `(SimTime, seq, slot)`,
//! 24 bytes regardless of how large the event type is. Heap sifts therefore
//! memcpy 24 bytes per comparison instead of the whole event; a paper-scale
//! run moves millions of events, so this is the difference between the heap
//! dominating the profile and disappearing into it.
//!
//! Events scheduled at exactly the current instant (common: a network's
//! zero-delay loopback delivery) skip the heap entirely and ride a FIFO
//! *fast lane*. The lane is drained in sequence order interleaved with
//! same-timestamp heap entries, so the FIFO-at-same-instant contract holds
//! across both paths: any heap entry with the current timestamp was
//! necessarily scheduled at an earlier instant (same-instant schedules go
//! to the lane) and thus carries a smaller sequence number.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// The complete mutable state of a simulation.
pub trait World {
    /// The event alphabet of this simulation.
    type Event;

    /// Handle one event. `sched.now()` is the event's timestamp; new events
    /// may be scheduled at or after that instant.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Fixed-size heap entry: total order by `(time, seq)`; `slot` locates the
/// event in the slab and never participates in ordering.
#[derive(Clone, Copy)]
struct Key {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The event queue. Handed to [`World::handle`] so handlers can schedule
/// follow-up events.
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Key>>,
    /// Slab backing the heap: `heap` keys index into here. `None` slots are
    /// free and listed in `free`.
    slab: Vec<Option<E>>,
    free: Vec<u32>,
    /// Fast lane for events scheduled at exactly `now`; entries are
    /// `(seq, event)` and their timestamp is implicitly `now`.
    lane: VecDeque<(u64, E)>,
    /// Number of `schedule_at` calls that targeted the past (see the
    /// [`Scheduler::schedule_at`] contract).
    past_schedules: u64,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            lane: VecDeque::new(),
            past_schedules: 0,
        }
    }

    /// Current simulated time (the timestamp of the event being handled).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Contract
    ///
    /// Scheduling into the past is a logic error in the caller, but it is
    /// handled identically in debug and release builds: the event is
    /// clamped to `now` (so it still fires, in FIFO order with other events
    /// at `now`) and the occurrence is counted in
    /// [`Scheduler::past_schedules`]. Harnesses surface that count per run
    /// (e.g. as the `past_clamps` telemetry counter) rather than writing
    /// to stderr, which would interleave across parallel workers.
    /// Deterministic outputs are never affected by the build profile.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = if at < self.now {
            self.past_schedules += 1;
            self.now
        } else {
            at
        };
        let seq = self.seq;
        self.seq += 1;
        if at == self.now {
            // Fast lane: no heap traffic for same-instant delivery.
            self.lane.push_back((seq, event));
            return;
        }
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(event);
                s
            }
            None => {
                let s = self.slab.len() as u32;
                self.slab.push(Some(event));
                s
            }
        };
        self.heap.push(Reverse(Key {
            time: at,
            seq,
            slot,
        }));
    }

    /// Schedule `event` after `delay`.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        if delay.is_zero() {
            self.schedule_now(event);
        } else {
            self.schedule_at(self.now + delay, event);
        }
    }

    /// Schedule `event` at exactly the current instant. It fires after all
    /// already-scheduled events at `now` (FIFO), without touching the heap.
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.lane.push_back((seq, event));
    }

    /// Number of pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.lane.len() + self.heap.len()
    }

    /// How many times an event was scheduled into the past (and clamped to
    /// `now`). Zero in a well-behaved simulation; exposed so harnesses can
    /// assert on it.
    #[inline]
    pub fn past_schedules(&self) -> u64 {
        self.past_schedules
    }

    /// Timestamp of the next pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        // Lane entries are at `now`, which never exceeds any heap entry's
        // timestamp, so a non-empty lane decides.
        if !self.lane.is_empty() {
            Some(self.now)
        } else {
            self.heap.peek().map(|&Reverse(k)| k.time)
        }
    }

    /// Remove and return the next event in `(time, seq)` order.
    fn pop(&mut self) -> Option<(SimTime, E)> {
        let from_lane = match (self.lane.front(), self.heap.peek()) {
            (Some(&(lane_seq, _)), Some(&Reverse(k))) => {
                // Same-timestamp heap entries were scheduled at an earlier
                // instant and carry smaller seqs; later heap entries lose
                // on time. The comparison keeps ordering airtight even so.
                k.time > self.now || k.seq > lane_seq
            }
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if from_lane {
            let (_, event) = self.lane.pop_front().expect("lane front vanished");
            Some((self.now, event))
        } else {
            let Reverse(k) = self.heap.pop().expect("heap top vanished");
            let event = self.slab[k.slot as usize].take().expect("slab slot empty");
            self.free.push(k.slot);
            Some((k.time, event))
        }
    }
}

/// Drives a [`World`] through simulated time.
pub struct Engine<W: World> {
    sched: Scheduler<W::Event>,
    events_processed: u64,
}

impl<W: World> Engine<W> {
    /// A fresh engine at t = 0 with an empty queue.
    pub fn new() -> Self {
        Engine {
            sched: Scheduler::new(),
            events_processed: 0,
        }
    }

    /// Access the scheduler, e.g. to seed initial events before running.
    pub fn scheduler(&mut self) -> &mut Scheduler<W::Event> {
        &mut self.sched
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Total events handled so far (an engine-health metric used by benches).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Read-only view of [`Scheduler::past_schedules`], so harnesses can
    /// report past-timestamp clamps without mutable scheduler access.
    pub fn past_schedules(&self) -> u64 {
        self.sched.past_schedules
    }

    /// Run until the queue is empty or simulated time would exceed `until`.
    ///
    /// Events with timestamp exactly `until` are **not** delivered, so
    /// consecutive `run_until` calls partition time into half-open intervals
    /// `[start, until)`. On return the clock rests at `until` (or at the last
    /// event time if the queue drained first).
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        while let Some(t) = self.sched.peek_time() {
            if t >= until {
                break;
            }
            let (time, event) = self.sched.pop().expect("peeked entry vanished");
            self.sched.now = time;
            self.events_processed += 1;
            world.handle(event, &mut self.sched);
        }
        if self.sched.now < until {
            self.sched.now = until;
        }
    }

    /// Run until the queue is empty.
    pub fn run_to_completion(&mut self, world: &mut W) {
        self.run_until(world, SimTime::MAX);
    }

    /// Deliver exactly one event. Returns `false` if the queue was empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.sched.pop() {
            Some((time, event)) => {
                self.sched.now = time;
                self.events_processed += 1;
                world.handle(event, &mut self.sched);
                true
            }
            None => false,
        }
    }
}

impl<W: World> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records the order in which events arrive.
    struct Recorder {
        log: Vec<(SimTime, u32)>,
    }

    enum Ev {
        Tag(u32),
        /// Schedules `Tag(n)` `k` more times at 1 ms intervals.
        Repeat(u32, u32),
        /// Schedules `Tag(n)` at the current instant (fast lane), then
        /// `Tag(n + 1)` 1 ms out (heap).
        NowAndLater(u32),
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
            match event {
                Ev::Tag(n) => self.log.push((sched.now(), n)),
                Ev::Repeat(n, k) => {
                    self.log.push((sched.now(), n));
                    if k > 0 {
                        sched.schedule_in(SimDuration::from_millis(1), Ev::Repeat(n, k - 1));
                    }
                }
                Ev::NowAndLater(n) => {
                    self.log.push((sched.now(), n));
                    sched.schedule_now(Ev::Tag(n));
                    sched.schedule_in(SimDuration::from_millis(1), Ev::Tag(n + 1));
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler()
            .schedule_at(SimTime::from_millis(30), Ev::Tag(3));
        eng.scheduler()
            .schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        eng.scheduler()
            .schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        let t = SimTime::from_millis(5);
        for n in 0..100 {
            eng.scheduler().schedule_at(t, Ev::Tag(n));
        }
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(tags, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn fast_lane_interleaves_fifo_with_heap_entries() {
        // Heap entries at the same timestamp (scheduled earlier) must fire
        // before lane entries (scheduled during that instant's handling).
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        let t = SimTime::from_millis(5);
        eng.scheduler().schedule_at(t, Ev::NowAndLater(10)); // fires first at t
        eng.scheduler().schedule_at(t, Ev::Tag(20)); // heap peer at t
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        // NowAndLater(10) logs 10, schedules Tag(10) in the lane; Tag(20)
        // (seq 1, scheduled before Tag(10)) must still fire before it.
        assert_eq!(tags, vec![10, 20, 10, 11]);
    }

    #[test]
    fn schedule_now_is_fifo_within_the_lane() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        for n in 0..50 {
            eng.scheduler().schedule_now(Ev::Tag(n));
        }
        eng.run_to_completion(&mut w);
        let tags: Vec<u32> = w.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(tags, (0..50).collect::<Vec<_>>());
        // All lane traffic: the heap was never touched.
        assert_eq!(eng.scheduler().heap.len(), 0);
    }

    #[test]
    fn run_until_is_half_open() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler()
            .schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        eng.scheduler()
            .schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        eng.run_until(&mut w, SimTime::from_millis(20));
        assert_eq!(w.log.len(), 1);
        assert_eq!(eng.now(), SimTime::from_millis(20));
        // The boundary event is still pending and fires on the next window.
        eng.run_until(&mut w, SimTime::from_millis(21));
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn lane_events_at_the_boundary_stay_pending() {
        // Events in the fast lane at t = until must not fire (half-open
        // window) and must survive into the next window.
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler().schedule_now(Ev::Tag(7)); // lane entry at t = 0
        eng.run_until(&mut w, SimTime::ZERO);
        assert!(w.log.is_empty(), "boundary event fired early");
        eng.run_until(&mut w, SimTime::from_millis(1));
        assert_eq!(w.log.len(), 1);
        assert_eq!(w.log[0], (SimTime::ZERO, 7));
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler().schedule_at(SimTime::ZERO, Ev::Repeat(7, 4));
        eng.run_to_completion(&mut w);
        assert_eq!(w.log.len(), 5);
        assert_eq!(w.log.last().unwrap().0, SimTime::from_millis(4));
        assert_eq!(eng.events_processed(), 5);
    }

    #[test]
    fn step_returns_false_on_empty() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        assert!(!eng.step(&mut w));
        eng.scheduler().schedule_at(SimTime::ZERO, Ev::Tag(0));
        assert!(eng.step(&mut w));
        assert!(!eng.step(&mut w));
    }

    #[test]
    fn clock_advances_to_until_even_when_queue_drains() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.run_until(&mut w, SimTime::from_secs(5));
        assert_eq!(eng.now(), SimTime::from_secs(5));
    }

    #[test]
    fn peek_and_pending() {
        let mut eng: Engine<Recorder> = Engine::new();
        assert_eq!(eng.scheduler().peek_time(), None);
        assert_eq!(eng.scheduler().pending(), 0);
        eng.scheduler()
            .schedule_at(SimTime::from_secs(1), Ev::Tag(1));
        eng.scheduler()
            .schedule_at(SimTime::from_secs(2), Ev::Tag(2));
        assert_eq!(eng.scheduler().peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(eng.scheduler().pending(), 2);
    }

    #[test]
    fn past_scheduling_clamps_identically_in_all_builds() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        eng.scheduler()
            .schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        eng.run_until(&mut w, SimTime::from_millis(20));
        // now == 20 ms; scheduling at 5 ms is a caller bug: clamped + counted.
        eng.scheduler()
            .schedule_at(SimTime::from_millis(5), Ev::Tag(2));
        assert_eq!(eng.scheduler().past_schedules(), 1);
        eng.run_until(&mut w, SimTime::from_millis(30));
        assert_eq!(w.log.len(), 2);
        // The clamped event fired at the clock's position, not in the past.
        assert_eq!(w.log[1].0, SimTime::from_millis(20));
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut w = Recorder { log: vec![] };
        let mut eng = Engine::new();
        // Schedule/deliver many future events one at a time: the slab must
        // stay at one slot, not grow with every event.
        for i in 0..1000u64 {
            eng.scheduler()
                .schedule_at(SimTime::from_millis(i + 1), Ev::Tag(i as u32));
            eng.run_until(&mut w, SimTime::from_millis(i + 2));
        }
        assert_eq!(w.log.len(), 1000);
        assert!(
            eng.scheduler().slab.len() <= 2,
            "slab grew to {} slots for serial traffic",
            eng.scheduler().slab.len()
        );
    }
}
