//! Data-size and data-rate units.
//!
//! The paper's experimental parameters are expressed in megabits per second
//! (link capacities of 15/25/35 Mb/s) and in multiples of the
//! bandwidth-delay product (queue sizes of 0.5x/2x/7x BDP). [`Bytes`] and
//! [`BitRate`] make that arithmetic explicit and overflow-safe.

use crate::time::SimDuration;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A byte count (payload sizes, queue occupancy, window sizes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Construct from kilobytes (1 kB = 1000 B, SI as used by `tc`).
    #[inline]
    pub const fn from_kb(kb: u64) -> Self {
        Bytes(kb * 1_000)
    }

    /// The raw count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// This many bytes expressed in bits.
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative factor, rounding to the nearest byte.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Bytes {
        debug_assert!(k >= 0.0);
        Bytes((self.0 as f64 * k).round() as u64)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        debug_assert!(rhs.0 <= self.0, "byte count underflow");
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    #[inline]
    fn sub_assign(&mut self, rhs: Bytes) {
        *self = *self - rhs;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{} B", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1} kB", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.2} MB", self.0 as f64 / 1e6)
        }
    }
}

/// A data rate in bits per second.
///
/// Rates are stored in bits/s (not bytes/s) because that is how link
/// capacities are quoted by `tc tbf` and by the paper itself.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BitRate(pub u64);

impl BitRate {
    /// Zero rate.
    pub const ZERO: BitRate = BitRate(0);

    /// Construct from bits per second.
    #[inline]
    pub const fn from_bps(bps: u64) -> Self {
        BitRate(bps)
    }

    /// Construct from kilobits per second.
    #[inline]
    pub const fn from_kbps(kbps: u64) -> Self {
        BitRate(kbps * 1_000)
    }

    /// Construct from megabits per second (integer).
    #[inline]
    pub const fn from_mbps(mbps: u64) -> Self {
        BitRate(mbps * 1_000_000)
    }

    /// Construct from megabits per second (fractional).
    #[inline]
    pub fn from_mbps_f64(mbps: f64) -> Self {
        debug_assert!(mbps >= 0.0 && mbps.is_finite());
        BitRate((mbps * 1e6).round().max(0.0) as u64)
    }

    /// Construct from gigabits per second.
    #[inline]
    pub const fn from_gbps(gbps: u64) -> Self {
        BitRate(gbps * 1_000_000_000)
    }

    /// Bits per second.
    #[inline]
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Megabits per second as a float (reporting).
    #[inline]
    pub fn as_mbps(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time to serialize `size` onto a link of this rate.
    ///
    /// Returns [`SimDuration::MAX`] for a zero rate (a stalled link never
    /// finishes transmitting).
    #[inline]
    pub fn tx_time(self, size: Bytes) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        // ns = bits * 1e9 / rate; widen to u128 so 64 kB at 1 kb/s cannot
        // overflow the intermediate product.
        let ns = (size.bits() as u128 * 1_000_000_000u128) / self.0 as u128;
        SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// Bandwidth-delay product for a given round-trip time, in bytes.
    ///
    /// This is the quantity the paper sizes router queues against
    /// (0.5x, 2x, 7x BDP).
    #[inline]
    pub fn bdp(self, rtt: SimDuration) -> Bytes {
        let bits = (self.0 as u128 * rtt.as_nanos() as u128) / 1_000_000_000u128;
        Bytes((bits / 8).min(u64::MAX as u128) as u64)
    }

    /// Bytes delivered in `dur` at this rate.
    #[inline]
    pub fn bytes_in(self, dur: SimDuration) -> Bytes {
        self.bdp(dur)
    }

    /// Scale by a non-negative factor (pacing gains and the like).
    #[inline]
    pub fn mul_f64(self, k: f64) -> BitRate {
        debug_assert!(k >= 0.0);
        let v = self.0 as f64 * k;
        BitRate(if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        })
    }

    /// Rate achieved by delivering `bytes` over `dur`; `None` if `dur` is
    /// zero (undefined rate).
    #[inline]
    pub fn from_delivery(bytes: Bytes, dur: SimDuration) -> Option<BitRate> {
        if dur.is_zero() {
            return None;
        }
        let bps = (bytes.bits() as u128 * 1_000_000_000u128) / dur.as_nanos() as u128;
        Some(BitRate(bps.min(u64::MAX as u128) as u64))
    }
}

impl fmt::Debug for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}Mb/s", self.as_mbps())
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} Mb/s", self.as_mbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_arithmetic() {
        assert_eq!(Bytes(100) + Bytes(50), Bytes(150));
        assert_eq!(Bytes(100) - Bytes(50), Bytes(50));
        assert_eq!(Bytes(10).saturating_sub(Bytes(20)), Bytes::ZERO);
        assert_eq!(Bytes::from_kb(510).as_u64(), 510_000);
        assert_eq!(Bytes(1000).bits(), 8000);
        assert_eq!(Bytes(100).mul_f64(0.5), Bytes(50));
    }

    #[test]
    fn rate_construction() {
        assert_eq!(BitRate::from_mbps(25).as_bps(), 25_000_000);
        assert_eq!(BitRate::from_mbps_f64(2.5).as_bps(), 2_500_000);
        assert_eq!(BitRate::from_gbps(1).as_mbps(), 1000.0);
        assert_eq!(BitRate::from_kbps(512).as_bps(), 512_000);
    }

    #[test]
    fn tx_time_exact() {
        // 1500 bytes at 12 Mb/s = 12000 bits / 12e6 bps = 1 ms.
        let r = BitRate::from_mbps(12);
        assert_eq!(r.tx_time(Bytes(1500)), SimDuration::from_millis(1));
        // Zero rate never completes.
        assert_eq!(BitRate::ZERO.tx_time(Bytes(1)), SimDuration::MAX);
        // Zero bytes are instantaneous.
        assert_eq!(r.tx_time(Bytes::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn bdp_matches_paper_setup() {
        // 25 Mb/s with the paper's 16.5 ms RTT: BDP = 25e6 * 0.0165 / 8 bytes.
        let bdp = BitRate::from_mbps(25).bdp(SimDuration::from_micros(16_500));
        assert_eq!(bdp.as_u64(), 51_562);
        // 2x BDP queue:
        assert_eq!(bdp.mul_f64(2.0).as_u64(), 103_124);
    }

    #[test]
    fn delivery_rate_round_trip() {
        let r = BitRate::from_mbps(10);
        let d = SimDuration::from_millis(100);
        let b = r.bytes_in(d);
        let back = BitRate::from_delivery(b, d).unwrap();
        // Integer truncation may lose <1 byte worth of rate.
        assert!((back.as_bps() as i64 - r.as_bps() as i64).abs() < 100);
        assert_eq!(BitRate::from_delivery(Bytes(1), SimDuration::ZERO), None);
    }

    #[test]
    fn no_overflow_on_large_values() {
        let r = BitRate::from_kbps(1);
        let t = r.tx_time(Bytes(100_000_000)); // 100 MB at 1 kb/s
        assert_eq!(t.as_secs_f64(), 800_000.0);
        let big = BitRate::from_gbps(100).bdp(SimDuration::from_secs(10));
        assert_eq!(big.as_u64(), 125_000_000_000);
    }
}
