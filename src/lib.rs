pub use gsrepro_testbed as testbed;
