//! Packet-conservation and invariant checks across the whole stack,
//! including property-based exploration of topology parameters.
//!
//! The core invariant: every packet handed to the network is exactly one
//! of {delivered, dropped, still inside the network} — no duplication, no
//! disappearance. Violations would silently corrupt every bitrate and loss
//! number in the reproduction, so these tests sweep a broad parameter
//! space.

use gsrepro_netsim::apps::{CbrSource, SinkAgent};
use gsrepro_netsim::net::NetworkBuilder;
use gsrepro_netsim::queue::QueueSpec;
use gsrepro_netsim::{LinkSpec, Shaper};
use gsrepro_simcore::{BitRate, Bytes, SimDuration, SimTime};
use proptest::prelude::*;

/// Build a two-hop network with a shaped middle link, run `secs`, and
/// return (sent, delivered, dropped, backlog) packet counts.
fn run_cbr(
    rate_mbps: u64,
    cbr_mbps: u64,
    queue_bytes: u64,
    pkt_size: u64,
    loss_prob: f64,
    secs: u64,
    seed: u64,
) -> (u64, u64, u64, u64) {
    let mut b = NetworkBuilder::new(seed);
    let s = b.add_node("src");
    let r = b.add_node("router");
    let d = b.add_node("dst");
    b.link(s, r, LinkSpec::lan(SimDuration::from_millis(1)));
    b.link(
        r,
        d,
        LinkSpec {
            shaper: Shaper::rate(BitRate::from_mbps(rate_mbps)),
            delay: SimDuration::from_millis(3),
            queue: QueueSpec::DropTail {
                limit: Bytes(queue_bytes),
            },
            jitter: SimDuration::ZERO,
            loss_prob,
            dup_prob: 0.0,
        },
    );
    b.link(d, r, LinkSpec::lan(SimDuration::from_millis(1)));
    b.link(r, s, LinkSpec::lan(SimDuration::from_millis(1)));
    let f = b.flow("cbr");
    let sink = b.add_agent(d, Box::new(SinkAgent::new()));
    b.add_agent(
        s,
        Box::new(CbrSource::new(
            f,
            d,
            sink,
            BitRate::from_mbps(cbr_mbps),
            Bytes(pkt_size),
        )),
    );
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(secs));
    let st = sim.net.monitor().stats(f);
    let sink_agent: &SinkAgent = sim.net.agent(sink);
    assert_eq!(
        sink_agent.received_pkts(),
        st.delivered_pkts,
        "sink and monitor must agree"
    );
    (
        st.sent_pkts,
        st.delivered_pkts,
        st.dropped_pkts(),
        st.sent_pkts - st.delivered_pkts - st.dropped_pkts(),
    )
}

#[test]
fn conservation_under_overload() {
    let (sent, delivered, dropped, in_flight) = run_cbr(10, 30, 20_000, 1000, 0.0, 20, 1);
    assert!(sent > 0 && delivered > 0 && dropped > 0);
    // Whatever is neither delivered nor dropped must fit inside the
    // network: the 20 kB queue (20 pkts) plus packets in propagation
    // (30 Mb/s of 1000-B packets over 5 ms of links ≈ 19).
    assert!(in_flight <= 45, "unaccounted packets: {in_flight}");
}

#[test]
fn conservation_with_random_loss() {
    let (sent, delivered, dropped, in_flight) = run_cbr(50, 10, 100_000, 1200, 0.2, 20, 2);
    assert!(dropped > 0);
    assert!(delivered > 0);
    assert!(in_flight <= 10);
    // Loss rate ≈ 20%.
    let lr = dropped as f64 / sent as f64;
    assert!((lr - 0.2).abs() < 0.03, "loss {lr}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation holds across arbitrary rates, queue sizes, packet
    /// sizes, and loss probabilities.
    #[test]
    fn packets_are_conserved(
        rate in 1u64..60,
        cbr in 1u64..60,
        queue in 3_000u64..200_000,
        pkt in 200u64..1500,
        loss in 0.0f64..0.3,
        seed in 0u64..1000,
    ) {
        let (sent, delivered, dropped, in_flight) =
            run_cbr(rate, cbr, queue, pkt, loss, 5, seed);
        prop_assert!(sent >= delivered + dropped);
        // In-network residue is bounded by queue capacity plus packets in
        // propagation across the 5 ms of link delay at the offered rate.
        let pps = cbr as f64 * 1e6 / 8.0 / pkt as f64;
        let max_resident = queue / pkt + (pps * 0.005) as u64 + 10;
        prop_assert!(
            in_flight <= max_resident,
            "residue {} exceeds bound {}", in_flight, max_resident
        );
        prop_assert!(delivered > 0);
    }

    /// Goodput never exceeds the shaped rate (within one bin of burst).
    #[test]
    fn goodput_bounded_by_capacity(
        rate in 2u64..50,
        cbr in 2u64..80,
        seed in 0u64..100,
    ) {
        let mut b = NetworkBuilder::new(seed);
        let s = b.add_node("s");
        let d = b.add_node("d");
        b.duplex(
            s,
            d,
            LinkSpec::bottleneck(
                BitRate::from_mbps(rate),
                Bytes(60_000),
                SimDuration::from_millis(5),
            ),
        );
        let f = b.flow("x");
        let sink = b.add_agent(d, Box::new(SinkAgent::new()));
        b.add_agent(
            s,
            Box::new(CbrSource::new(f, d, sink, BitRate::from_mbps(cbr), Bytes(1200))),
        );
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(10));
        let gp = sim.goodput_mbps(f, SimTime::from_secs(1), SimTime::from_secs(10));
        prop_assert!(gp <= rate as f64 * 1.05 + 0.5, "goodput {} > capacity {}", gp, rate);
    }
}
