//! Cross-crate integration: the full testbed pipeline (gamestream + tcp +
//! netsim + testbed harness) on shortened timelines, checking the
//! qualitative structure every paper figure relies on.

use gsrepro_simcore::SimTime;
use gsrepro_testbed::config::{Condition, Timeline};
use gsrepro_testbed::{metrics, run_condition, CcaKind, SystemKind};

/// Shared short timeline: 54 s runs, competitor during the middle third.
fn tl() -> Timeline {
    Timeline::scaled(0.1)
}

#[test]
fn game_yields_when_tcp_arrives_and_recovers_after() {
    // Luna is the clear yielder-and-recoverer vs Cubic (Stadia, per the
    // paper and our Figure 3, barely yields at a 2x queue).
    let cond = Condition::new(SystemKind::Luna, Some(CcaKind::Cubic), 25, 2.0).with_timeline(tl());
    let r = run_condition(&cond, 0);
    let t = cond.timeline;

    let before = r
        .game_window(t.original_window.0, t.original_window.1)
        .mean();
    let during = r
        .game_window(t.adjusted_window.0, t.adjusted_window.1)
        .mean();
    let rec = t.recovery_window();
    let half = SimTime::from_nanos((rec.0.as_nanos() + rec.1.as_nanos()) / 2);
    let after = r.game_window(half, rec.1).mean();

    assert!(before > 20.0, "pre-competitor bitrate {before}");
    assert!(
        during < before - 5.0,
        "must yield to TCP: {during} !< {before}"
    );
    assert!(
        after > during + 3.0,
        "must recover afterwards: {after} !> {during}"
    );
}

#[test]
fn tcp_flow_gets_capacity_while_active_only() {
    let cond = Condition::new(SystemKind::Luna, Some(CcaKind::Cubic), 25, 2.0).with_timeline(tl());
    let r = run_condition(&cond, 0);
    let t = cond.timeline;

    let before = r
        .iperf_window(t.original_window.0, t.original_window.1)
        .mean();
    let during = r
        .iperf_window(t.fairness_window.0, t.fairness_window.1)
        .mean();
    let rec = t.recovery_window();
    let after = r.iperf_window(rec.0 + (rec.1 - rec.0) / 2, rec.1).mean();

    assert!(before < 0.1, "no TCP before start: {before}");
    assert!(during > 5.0, "TCP must get real throughput: {during}");
    assert!(after < 1.0, "TCP should drain after stop: {after}");
}

#[test]
fn link_is_never_overfilled() {
    // The sum of the two flows can never exceed the bottleneck capacity
    // (plus one bin of slack for burst alignment).
    for cca in [CcaKind::Cubic, CcaKind::Bbr] {
        let cond = Condition::new(SystemKind::Stadia, Some(cca), 15, 0.5).with_timeline(tl());
        let r = run_condition(&cond, 0);
        for i in 0..r.game_bins_mbps.len() {
            let total = r.game_bins_mbps[i] + r.iperf_bins_mbps.get(i).copied().unwrap_or(0.0);
            assert!(
                total < 15.0 * 1.15,
                "bin {i}: combined goodput {total} exceeds capacity ({cca})"
            );
        }
    }
}

#[test]
fn rtt_rises_under_cubic_competition_with_big_queue() {
    let cond =
        Condition::new(SystemKind::GeForce, Some(CcaKind::Cubic), 25, 7.0).with_timeline(tl());
    let r = run_condition(&cond, 0);
    let t = cond.timeline;
    let solo = r
        .rtt_window(t.original_window.0, t.original_window.1)
        .mean();
    let contested = r.rtt_window(t.iperf_start, t.iperf_stop).mean();
    assert!(solo < 30.0, "solo RTT {solo}");
    // 7x BDP at 25 Mb/s ≈ 115 ms of queueing when full: Cubic keeps it
    // high. Even in a shortened run it must be far above solo.
    assert!(
        contested > solo + 40.0,
        "cubic must bloat the queue: {contested} vs solo {solo}"
    );
}

#[test]
fn bbr_limits_queueing_relative_to_cubic_at_7x() {
    let mk = |cca| {
        let cond = Condition::new(SystemKind::GeForce, Some(cca), 25, 7.0).with_timeline(tl());
        let r = run_condition(&cond, 0);
        let t = cond.timeline;
        r.rtt_window(t.iperf_start, t.iperf_stop).mean()
    };
    let cubic_rtt = mk(CcaKind::Cubic);
    let bbr_rtt = mk(CcaKind::Bbr);
    // Paper Table 4 at 7x: ≈110 ms vs ≈55 ms. Shape: BBR clearly lower.
    assert!(
        bbr_rtt < cubic_rtt * 0.75,
        "BBR's inflight cap must limit queueing: bbr {bbr_rtt} vs cubic {cubic_rtt}"
    );
}

#[test]
fn frame_rate_near_60_without_competition() {
    let cond = Condition::new(SystemKind::Luna, None, 35, 2.0).with_timeline(tl());
    let r = run_condition(&cond, 0);
    let t = cond.timeline;
    let fps = r.fps_window(t.original_window.0, t.iperf_stop).mean();
    assert!(fps > 57.0, "uncontested fps {fps}");
}

#[test]
fn loss_near_zero_without_competition() {
    for sys in SystemKind::ALL {
        let cond = Condition::new(sys, None, 25, 2.0).with_timeline(tl());
        let r = run_condition(&cond, 0);
        // Paper: "loss rates are near 0 when there is no competing TCP
        // flow" (after stream settles to the constraint).
        let t = cond.timeline;
        let loss = r.game_loss_window(t.original_window.0, t.end);
        assert!(loss < 0.01, "{sys}: solo loss {loss}");
    }
}

#[test]
fn fairness_signs_match_paper_at_small_queue() {
    // 0.5x BDP, 25 Mb/s: paper Figure 3's starkest column.
    let fair = |sys, cca| {
        let cond = Condition::new(sys, Some(cca), 25, 0.5).with_timeline(tl());
        let r = run_condition(&cond, 0);
        metrics::fairness(&r, &cond)
    };
    // vs Cubic: Stadia takes more than fair; GeForce much less.
    let stadia = fair(SystemKind::Stadia, CcaKind::Cubic);
    let geforce = fair(SystemKind::GeForce, CcaKind::Cubic);
    assert!(
        stadia > 0.1,
        "stadia vs cubic at 0.5x should be warm: {stadia}"
    );
    assert!(geforce < -0.1, "geforce must defer to cubic: {geforce}");
    // vs BBR every system is at or below fair.
    for sys in SystemKind::ALL {
        let f = fair(sys, CcaKind::Bbr);
        assert!(f < 0.15, "{sys} vs bbr at 0.5x should not be warm: {f}");
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let cond = Condition::new(SystemKind::Stadia, Some(CcaKind::Bbr), 35, 7.0)
        .with_timeline(Timeline::scaled(0.05));
    let a = run_condition(&cond, 3);
    let b = run_condition(&cond, 3);
    assert_eq!(a.game_bins_mbps, b.game_bins_mbps);
    assert_eq!(a.iperf_bins_mbps, b.iperf_bins_mbps);
    assert_eq!(a.rtt, b.rtt);
    assert_eq!(a.fps_bins, b.fps_bins);
    assert_eq!(a.tcp_retransmissions, b.tcp_retransmissions);
}
