//! Offline stand-in for `proptest` (the subset this workspace uses).
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the `proptest!` macro surface the test suite relies on:
//! range strategies, `any::<T>()`, tuple strategies,
//! `prop::collection::vec`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Semantics: each property runs `cases` times with inputs drawn from a
//! deterministic per-test RNG (seeded from the test name), so failures are
//! reproducible run-to-run. Unlike real proptest there is **no shrinking**
//! — a failing case reports the panic from `prop_assert!` directly, which
//! includes the formatted values under test.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-property configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 32 keeps the simulation-heavy
        // properties in this workspace fast on one core while still
        // exploring a meaningful slice of the input space.
        ProptestConfig { cases: 32 }
    }
}

/// The RNG handed to strategies. Seeded per (test, case) so every case is
/// independent and the whole suite is deterministic.
pub struct TestRng(SmallRng);

impl TestRng {
    /// RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(
            h ^ ((case as u64) << 32 | case as u64),
        ))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.gen::<u64>()
    }

    fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Marker returned by [`any`]; the strategy for "any value of `T`".
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — uniform over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Namespaced combinators (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: std::ops::Range<usize>,
        }

        /// `vec(element_strategy, min..max)` — as in real proptest.
        pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = Strategy::sample(&self.len, rng);
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest! { ... }` block: expands each contained function into a
/// `#[test]` that runs `cases` times with strategy-drawn arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __proptest_rng =
                    $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        let s = 0u64..100;
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::for_case("v", 0);
        let s = prop::collection::vec(0u64..10, 2..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(
            xs in prop::collection::vec((any::<bool>(), 0u64..50), 1..20),
            k in 1u32..5,
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!((1..5).contains(&k));
            for (_, v) in &xs {
                prop_assert!(*v < 50);
            }
        }
    }
}
