//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface the workspace uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256++ — the same algorithm `rand 0.8`'s `SmallRng` uses on
//! 64-bit platforms — seeded through splitmix64, so statistical quality
//! matches the real dependency. Stream *values* are not guaranteed to be
//! bit-identical to upstream `rand`; the simulator only requires
//! determinism across its own runs, which this provides.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's whole domain
    /// (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand 0.8`'s 64-bit `SmallRng`.
    /// Fast, 256-bit state, non-cryptographic.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(z: &mut u64) -> u64 {
        *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = *z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand through splitmix64 per the xoshiro authors' guidance;
            // guarantees a nonzero state for any seed.
            let mut z = seed;
            SmallRng {
                s: [
                    splitmix64(&mut z),
                    splitmix64(&mut z),
                    splitmix64(&mut z),
                    splitmix64(&mut z),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut r = SmallRng::seed_from_u64(5);
        // 0..=u64::MAX must not overflow the width computation.
        let _ = r.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SmallRng::seed_from_u64(6);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
