//! Offline stand-in for `criterion` (the subset this workspace uses).
//!
//! crates.io is unreachable in the build environment, so this vendored
//! crate provides a minimal wall-clock benchmark harness behind the same
//! `criterion_group!` / `criterion_main!` / `Criterion` surface. Each
//! benchmark is warmed up once, then timed for a fixed wall budget (or a
//! sample-count cap); mean/min per-iteration times print to stdout as
//!
//! ```text
//! bench group/name ... mean 12.345 ms/iter, min 11.987 ms (17 iters)
//! ```
//!
//! `cargo bench -- <substring>` filters benchmarks by name, like real
//! criterion. There is no statistical regression machinery — track the
//! printed numbers (or the `perf` binary's `BENCH_hotpath.json`) across
//! commits instead.

use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget after warmup.
const TIME_BUDGET: Duration = Duration::from_secs(2);

/// Prevent the optimizer from discarding a value (stable-Rust idiom).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle, passed to every benchmark function.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            sample_size: 60,
        }
    }
}

impl Criterion {
    /// Read CLI args (`cargo bench -- <filter>`); mirrors real criterion.
    pub fn configure_from_args(mut self) -> Self {
        // Skip flags cargo-bench forwards (e.g. `--bench`); the first bare
        // token is a name filter.
        let arg = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self.filter = arg;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, &self.filter, self.sample_size, f);
        self
    }

    /// Start a named group; benchmarks inside print as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            filter: &self.filter,
            sample_size: self.sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample budget.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    filter: &'a Option<String>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Cap the number of timed iterations (real criterion's sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name);
        run_bench(&full, self.filter, self.sample_size, f);
        self
    }

    /// End the group (kept for API compatibility; no-op).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    max_samples: usize,
}

impl Bencher {
    /// Time `f` repeatedly: one warmup call, then timed iterations until
    /// the wall budget or the sample cap is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup (also triggers lazy init)
        let budget_start = Instant::now();
        while self.samples.len() < self.max_samples
            && (self.samples.len() < 3 || budget_start.elapsed() < TIME_BUDGET)
        {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }
}

fn run_bench<F>(name: &str, filter: &Option<String>, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::new(),
        max_samples: sample_size.max(1),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {name} ... no samples (closure never called iter)");
        return;
    }
    let n = b.samples.len() as u32;
    let mean = b.samples.iter().sum::<Duration>() / n;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {name} ... mean {:.3} ms/iter, min {:.3} ms ({n} iters)",
        mean.as_secs_f64() * 1e3,
        min.as_secs_f64() * 1e3,
    );
}

/// Bundle benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            filter: None,
            sample_size: 5,
        };
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz".into()),
            sample_size: 5,
        };
        let mut ran = false;
        c.bench_function("abc", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran, "filtered bench must not run");
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion {
            filter: None,
            sample_size: 3,
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).bench_function("x", |b| b.iter(|| ()));
        g.finish();
    }
}
